package preprocess

import (
	"fmt"
	"testing"

	"harvest/internal/hw"
	"harvest/internal/imaging"
	"harvest/internal/stats"
)

// bench4K returns one 4K UAS frame encoded as raw PPM — the
// bandwidth-bound decode case where buffer churn, not arithmetic,
// dominates the preprocessing cost.
func bench4K(b *testing.B) []byte {
	b.Helper()
	im := imaging.Synthesize(3840, 2160, imaging.KindRows, stats.NewRNG(42))
	data, err := imaging.EncodeBytes(im, imaging.FormatPPM)
	if err != nil {
		b.Fatal(err)
	}
	return data
}

// naiveOne is the un-fused per-image baseline: every stage decodes or
// transforms into a freshly allocated buffer, as the three-pass
// resize → crop → normalize pipeline did before fusion.
func naiveOne(b *testing.B, data []byte, out int) []float32 {
	im, err := imaging.DecodeBytes(data, imaging.FormatPPM)
	if err != nil {
		b.Fatal(err)
	}
	resized := imaging.ResizeShortSide(im, out)
	cropped := imaging.CenterCrop(resized, out, out)
	return imaging.Normalize(cropped, imaging.ImageNetMean, imaging.ImageNetStd)
}

// BenchmarkPreprocessFusedVsNaive isolates the kernel fusion win on a
// single goroutine: one decode+resize+crop+normalize pass into reused
// buffers versus four allocating passes.
func BenchmarkPreprocessFusedVsNaive(b *testing.B) {
	data := bench4K(b)
	const out = 224
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			_ = naiveOne(b, data, out)
		}
	})
	b.Run("fused-pooled", func(b *testing.B) {
		e := &CPUEngine{Platform: hw.A100(), Out: out, Materialize: true,
			Workers: 1, Tensors: &imaging.TensorPool{}}
		items := []Item{{Encoded: data, Format: imaging.FormatPPM}}
		b.ReportAllocs()
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			res, err := e.ProcessBatch(items)
			if err != nil {
				b.Fatal(err)
			}
			e.Recycle(res.Tensors)
		}
	})
}

// BenchmarkPreprocessPooledVsAlloc isolates the buffer-recycling win:
// the same fused engine with and without tensor/scratch reuse across
// batches.
func BenchmarkPreprocessPooledVsAlloc(b *testing.B) {
	data := bench4K(b)
	const batch = 4
	items := make([]Item, batch)
	for i := range items {
		items[i] = Item{Encoded: data, Format: imaging.FormatPPM}
	}
	run := func(b *testing.B, e *CPUEngine, recycle bool) {
		b.ReportAllocs()
		b.SetBytes(int64(len(data)) * batch)
		for i := 0; i < b.N; i++ {
			res, err := e.ProcessBatch(items)
			if err != nil {
				b.Fatal(err)
			}
			if recycle {
				e.Recycle(res.Tensors)
			}
		}
	}
	b.Run("alloc", func(b *testing.B) {
		run(b, &CPUEngine{Platform: hw.A100(), Out: 224, Materialize: true, Workers: 1}, false)
	})
	b.Run("pooled", func(b *testing.B) {
		run(b, &CPUEngine{Platform: hw.A100(), Out: 224, Materialize: true,
			Workers: 1, Tensors: &imaging.TensorPool{}}, true)
	})
}

// BenchmarkPreprocessThroughputVsWorkers measures batch throughput of
// the worker-pool engine as the pool widens, against the naive
// single-thread per-image baseline the acceptance criteria compare to.
// images/sec is the paper-facing metric (Fig. 7 reports per-image
// preprocessing time).
func BenchmarkPreprocessThroughputVsWorkers(b *testing.B) {
	data := bench4K(b)
	const out, batch = 224, 8
	items := make([]Item, batch)
	for i := range items {
		items[i] = Item{Encoded: data, Format: imaging.FormatPPM}
	}
	b.Run("naive-1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for range items {
				_ = naiveOne(b, data, out)
			}
		}
		b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "images/sec")
	})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("fused-pooled-%d", workers), func(b *testing.B) {
			e := &CPUEngine{Platform: hw.A100(), Out: out, Materialize: true,
				Workers: workers, Tensors: &imaging.TensorPool{}}
			defer e.Close()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := e.ProcessBatch(items)
				if err != nil {
					b.Fatal(err)
				}
				e.Recycle(res.Tensors)
			}
			b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "images/sec")
		})
	}
}
