package engine

import (
	"errors"
	"math"
	"testing"

	"harvest/internal/hw"
	"harvest/internal/models"
	"harvest/internal/stats"
	"harvest/internal/tensor"
)

func TestNewUnknownModel(t *testing.T) {
	if _, err := New(hw.A100(), "NoSuchModel"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestInferStatsConsistency(t *testing.T) {
	eng, err := New(hw.A100(), models.NameViTSmall)
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Infer(32)
	if err != nil {
		t.Fatal(err)
	}
	if st.Batch != 32 {
		t.Errorf("batch %d", st.Batch)
	}
	if math.Abs(st.ImgPerSec*st.Seconds-32) > 1e-6 {
		t.Errorf("throughput*latency = %v, want 32", st.ImgPerSec*st.Seconds)
	}
	wantTF := st.ImgPerSec * eng.Entry.Spec.GFLOPsPerImage() / 1000
	if math.Abs(st.TFLOPS-wantTF) > 0.01 {
		t.Errorf("TFLOPS %v inconsistent with throughput (want %v)", st.TFLOPS, wantTF)
	}
	if st.MFU <= 0 || st.MFU > 1 {
		t.Errorf("MFU %v out of range", st.MFU)
	}
}

func TestInferErrors(t *testing.T) {
	eng, err := New(hw.A100(), models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Infer(0); err == nil {
		t.Error("zero batch accepted")
	}
	if _, err := eng.Infer(-1); err == nil {
		t.Error("negative batch accepted")
	}
}

func TestOOMBoundariesMatchPaper(t *testing.T) {
	// Engine-only boundaries from Fig. 5/6 on Jetson.
	cases := []struct {
		model string
		max   int
	}{
		{models.NameViTTiny, 196},
		{models.NameViTSmall, 64},
		{models.NameViTBase, 8},
		{models.NameResNet50, 64},
	}
	for _, c := range cases {
		eng, err := New(hw.Jetson(), c.model)
		if err != nil {
			t.Fatal(err)
		}
		if got := eng.MaxBatch(0); got != c.max {
			t.Errorf("Jetson %s engine max batch %d, want %d", c.model, got, c.max)
		}
		if _, err := eng.Infer(c.max); err != nil {
			t.Errorf("Jetson %s batch %d should fit: %v", c.model, c.max, err)
		}
		// The next sweep point must OOM.
		sweep := hw.BatchSweep(hw.KeyJetson)
		for i, b := range sweep {
			if b == c.max && i+1 < len(sweep) {
				if _, err := eng.Infer(sweep[i+1]); !errors.Is(err, ErrOOM) {
					t.Errorf("Jetson %s batch %d should OOM, got %v", c.model, sweep[i+1], err)
				}
			}
		}
	}
}

func TestPipelineModeShrinksMaxBatch(t *testing.T) {
	eng, err := New(hw.V100(), models.NameViTBase)
	if err != nil {
		t.Fatal(err)
	}
	engineMax := eng.MaxBatch(0)
	eng.Pipeline = true
	pipeMax := eng.MaxBatch(hw.EndToEndMaxBatch)
	if pipeMax != 2 {
		t.Errorf("V100 ViT_Base pipeline max %d, want 2 (Fig. 8)", pipeMax)
	}
	if engineMax <= pipeMax {
		t.Errorf("pipeline max %d not below engine max %d", pipeMax, engineMax)
	}
}

func TestSweepMarksOOM(t *testing.T) {
	eng, err := New(hw.Jetson(), models.NameViTBase)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Sweep()
	if len(res) != len(hw.JetsonBatchSweep) {
		t.Fatalf("sweep has %d points", len(res))
	}
	sawOOM := false
	for _, r := range res {
		if r.OOM {
			sawOOM = true
			if r.Batch <= 8 {
				t.Errorf("batch %d marked OOM but should fit", r.Batch)
			}
		} else if r.Seconds <= 0 {
			t.Errorf("batch %d has no latency", r.Batch)
		}
	}
	if !sawOOM {
		t.Error("sweep found no OOM point for Jetson ViT_Base")
	}
}

func TestThroughputIncreasesWithBatch(t *testing.T) {
	eng, err := New(hw.V100(), models.NameResNet50)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, b := range []int{1, 4, 16, 64, 256, 1024} {
		st, err := eng.Infer(b)
		if err != nil {
			t.Fatal(err)
		}
		if st.ImgPerSec <= prev {
			t.Errorf("throughput not increasing at batch %d", b)
		}
		prev = st.ImgPerSec
	}
}

func TestInferTensorsRequiresBackend(t *testing.T) {
	eng, err := New(hw.A100(), models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.InferTensors([][]float32{make([]float32, 3*32*32)}, 32); err == nil {
		t.Error("InferTensors without backend accepted")
	}
}

func TestInferTensorsRealBackend(t *testing.T) {
	eng, err := New(hw.A100(), models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	const classes = 5
	real, err := models.NewViTModel(models.MicroViTConfig(classes), stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	eng.Real = real
	rng := stats.NewRNG(4)
	inputs := make([][]float32, 3)
	for i := range inputs {
		in := make([]float32, 3*32*32)
		for j := range in {
			in[j] = float32(rng.Float64()*2 - 1)
		}
		inputs[i] = in
	}
	outputs, st, err := eng.InferTensors(inputs, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(outputs) != 3 {
		t.Fatalf("got %d outputs", len(outputs))
	}
	for _, o := range outputs {
		if len(o) != classes {
			t.Fatalf("output width %d", len(o))
		}
	}
	if st.Batch != 3 || st.Seconds <= 0 {
		t.Errorf("stats %+v", st)
	}
	// Wrong input length must be rejected.
	if _, _, err := eng.InferTensors([][]float32{make([]float32, 7)}, 32); err == nil {
		t.Error("bad input length accepted")
	}
	if _, _, err := eng.InferTensors(nil, 32); err == nil {
		t.Error("empty inputs accepted")
	}
}

func TestAllPlatformModelPairsConstruct(t *testing.T) {
	for _, p := range hw.All() {
		for _, m := range models.Names() {
			eng, err := New(p, m)
			if err != nil {
				t.Errorf("%s/%s: %v", p.Name, m, err)
				continue
			}
			if eng.MaxBatch(0) < 1 {
				t.Errorf("%s/%s cannot fit batch 1", p.Name, m)
			}
		}
	}
}

// TestSweepRecordsErrors verifies no sweep point vanishes silently:
// failed points carry the causing error (OOM points wrap ErrOOM) and
// healthy points carry none.
func TestSweepRecordsErrors(t *testing.T) {
	eng, err := New(hw.Jetson(), models.NameViTBase)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range eng.Sweep() {
		switch {
		case r.OOM:
			if !errors.Is(r.Err, ErrOOM) {
				t.Errorf("batch %d marked OOM but Err=%v does not wrap ErrOOM", r.Batch, r.Err)
			}
		case r.Err != nil:
			t.Errorf("batch %d: unexpected sweep error %v", r.Batch, r.Err)
		default:
			if r.Seconds <= 0 {
				t.Errorf("batch %d has neither stats nor error", r.Batch)
			}
		}
	}
}

// panicForwarder stands in for a malformed real backend whose forward
// pass panics deep inside a kernel.
type panicForwarder struct{}

func (panicForwarder) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	panic(tensor.ErrShape)
}

func TestInferTensorsRecoversPanic(t *testing.T) {
	eng, err := New(hw.A100(), models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	eng.Real = panicForwarder{}
	_, _, err = eng.InferTensors([][]float32{make([]float32, 3*32*32)}, 32)
	if err == nil {
		t.Fatal("panicking backend returned no error")
	}
	if !errors.Is(err, ErrBackend) {
		t.Fatalf("recovered panic yields %v, want ErrBackend", err)
	}
}

func TestAttachReal(t *testing.T) {
	eng, err := New(hw.A100(), models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AttachReal("int4", 1); err == nil {
		t.Error("unknown precision accepted")
	}
	if eng.Real != nil {
		t.Fatal("failed AttachReal left a backend attached")
	}
	if err := eng.AttachReal("fp32", 1); err != nil {
		t.Fatal(err)
	}
	sz := eng.Entry.Spec.InputSize
	in := make([]float32, 3*sz*sz)
	for i := range in {
		in[i] = float32(i%7)/7 - 0.5
	}
	out, st, err := eng.InferTensors([][]float32{in}, sz)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || len(out[0]) != eng.Entry.Spec.NumClasses {
		t.Fatalf("got %d outputs of width %d", len(out), len(out[0]))
	}
	if st.Batch != 1 {
		t.Errorf("stats %+v", st)
	}
}
