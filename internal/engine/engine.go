// Package engine implements the model inference engine of the HARVEST
// backend: the component that executes one model on one platform at a
// chosen batch size (the TensorRT engine analogue). Performance comes
// from the calibrated internal/hw models; functional execution can be
// delegated to a real compute backend over internal/tensor.
package engine

import (
	"errors"
	"fmt"

	"harvest/internal/hw"
	"harvest/internal/models"
	"harvest/internal/quant"
	"harvest/internal/stats"
	"harvest/internal/tensor"
)

// ErrOOM is returned when a batch does not fit in device memory,
// mirroring the out-of-memory boundaries of the paper's Fig. 5/6/8.
var ErrOOM = errors.New("engine: out of device memory")

// ErrBackend wraps failures (including recovered panics) from the real
// compute backend, so a malformed model or tensor cannot crash a
// serving replica and callers can classify the failure.
var ErrBackend = errors.New("engine: real backend failure")

// InferStats describes one executed batch.
type InferStats struct {
	Batch     int
	Seconds   float64
	ImgPerSec float64
	MFU       float64
	TFLOPS    float64
}

// Forwarder executes a real forward pass; *models.ViTModel and
// *models.ResNetModel both satisfy it.
type Forwarder interface {
	Forward(x *tensor.Tensor) (*tensor.Tensor, error)
}

// Engine hosts one model instance on one platform.
type Engine struct {
	Entry    models.Entry
	Platform *hw.Platform
	Perf     *hw.PerfModel
	// Pipeline marks the engine as co-located with GPU preprocessing
	// (the Fig. 8 end-to-end memory configuration).
	Pipeline bool
	// Real, when set, is invoked by InferTensors for actual compute.
	Real Forwarder
}

// New creates an engine for the named Table 3 model on the platform,
// with weights held at the platform's inference precision.
func New(p *hw.Platform, modelName string) (*Engine, error) {
	entry, err := models.ByName(modelName)
	if err != nil {
		return nil, err
	}
	bytesPer, err := quant.BytesPerValue(string(p.Precision))
	if err != nil {
		return nil, err
	}
	perf, err := hw.NewPerfModel(p, modelName,
		float64(entry.Spec.ParamMACs()), entry.Spec.WeightBytes(bytesPer))
	if err != nil {
		return nil, err
	}
	return &Engine{Entry: entry, Platform: p, Perf: perf}, nil
}

// Infer models execution of one batch, returning its latency and
// utilization, or ErrOOM if the batch does not fit.
func (e *Engine) Infer(batch int) (InferStats, error) {
	if batch <= 0 {
		return InferStats{}, fmt.Errorf("engine: non-positive batch %d", batch)
	}
	if !e.Perf.FitsMemory(batch, e.Pipeline) {
		return InferStats{}, fmt.Errorf("%w: %s batch %d needs %d MiB, %d MiB available",
			ErrOOM, e.Entry.Spec.Name, batch,
			e.Perf.MemoryBytes(batch, e.Pipeline)>>20, e.availBytes()>>20)
	}
	sec := e.Perf.LatencySeconds(batch)
	return InferStats{
		Batch:     batch,
		Seconds:   sec,
		ImgPerSec: float64(batch) / sec,
		MFU:       e.Perf.MFU(batch),
		TFLOPS:    e.Perf.AchievedTFLOPS(batch),
	}, nil
}

func (e *Engine) availBytes() int64 {
	if e.Pipeline {
		return e.Platform.PipelineMemBytes()
	}
	return e.Platform.EngineMemBytes()
}

// MaxBatch returns the largest batch of the platform's figure sweep
// that fits, optionally capped (the Fig. 8 harness caps at 64).
func (e *Engine) MaxBatch(cap int) int {
	return e.Perf.MaxBatch(hw.BatchSweep(e.Platform.Name), e.Pipeline, cap)
}

// AttachReal builds and attaches an executable compute backend for the
// engine's model at the given precision ("fp32", "fp16", "bf16",
// "int8"; empty means fp32), with weights initialized from seed. After
// this, InferTensors runs real forward passes through the packed
// (quantized, for int8/f16) GEMM kernels.
func (e *Engine) AttachReal(precision string, seed uint64) error {
	f, err := models.NewExecutable(e.Entry.Spec.Name, e.Entry.Spec.NumClasses, precision, stats.NewRNG(seed))
	if err != nil {
		return err
	}
	e.Real = f
	return nil
}

// InferTensors runs a real forward pass through the attached Real
// backend over a batch of flattened CHW inputs, returning per-image
// logits. The modeled InferStats for the same batch size accompany the
// outputs so callers get both function and (modeled) performance.
// Panics escaping the backend (shape mismatches deep inside a malformed
// model) are recovered into ErrBackend-wrapped errors: a bad model must
// fail the request, never the replica.
func (e *Engine) InferTensors(inputs [][]float32, inputSize int) (out [][]float32, stats InferStats, err error) {
	if e.Real == nil {
		return nil, InferStats{}, fmt.Errorf("engine: no real backend attached to %s", e.Entry.Spec.Name)
	}
	if len(inputs) == 0 {
		return nil, InferStats{}, fmt.Errorf("engine: empty input batch")
	}
	stats, err = e.Infer(len(inputs))
	if err != nil {
		return nil, InferStats{}, err
	}
	want := 3 * inputSize * inputSize
	x := tensor.New(len(inputs), 3, inputSize, inputSize)
	for i, in := range inputs {
		if len(in) != want {
			return nil, InferStats{}, fmt.Errorf("engine: input %d has %d values, want %d", i, len(in), want)
		}
		copy(x.Data[i*want:(i+1)*want], in)
	}
	defer func() {
		if r := recover(); r != nil {
			out, stats = nil, InferStats{}
			err = fmt.Errorf("%w: %s: %v", ErrBackend, e.Entry.Spec.Name, r)
		}
	}()
	logits, err := e.Real.Forward(x)
	if err != nil {
		return nil, InferStats{}, fmt.Errorf("%w: %s: %v", ErrBackend, e.Entry.Spec.Name, err)
	}
	n := logits.Shape[1]
	out = make([][]float32, len(inputs))
	for i := range out {
		out[i] = append([]float32(nil), logits.Data[i*n:(i+1)*n]...)
	}
	return out, stats, nil
}

// SweepResult is one point of a batch-size sweep.
type SweepResult struct {
	Batch int
	InferStats
	OOM bool
	// Err records why the point has no stats: the OOM error for OOM
	// points, or any other engine failure. A sweep point never vanishes
	// without trace.
	Err error
}

// Sweep evaluates the engine across the platform's figure batch axis,
// marking out-of-memory points, producing the data behind Fig. 5/6.
func (e *Engine) Sweep() []SweepResult {
	var out []SweepResult
	for _, b := range hw.BatchSweep(e.Platform.Name) {
		st, err := e.Infer(b)
		if err != nil {
			out = append(out, SweepResult{Batch: b, OOM: errors.Is(err, ErrOOM), Err: err})
			continue
		}
		out = append(out, SweepResult{Batch: b, InferStats: st})
	}
	return out
}
