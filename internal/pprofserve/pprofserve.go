// Package pprofserve starts the opt-in net/http/pprof debug listener
// the serving binaries expose behind -pprof-addr. The profiler gets
// its own mux and address — never the serving mux — so profiling
// endpoints are reachable only where the operator points them
// (typically localhost), not on the public serving port.
package pprofserve

import (
	"net/http"
	"net/http/pprof"
	"time"
)

// Start serves pprof on addr in a background goroutine and reports
// errors (including startup failures) to onErr. Empty addr disables
// profiling and returns immediately.
func Start(addr string, onErr func(error)) {
	if addr == "" {
		return
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		if err := srv.ListenAndServe(); err != nil && onErr != nil {
			onErr(err)
		}
	}()
}
