package workload

import (
	"math"
	"testing"

	"harvest/internal/stats"
)

func TestPoissonTraceRateAndOrdering(t *testing.T) {
	rng := stats.NewRNG(1)
	trace := PoissonTrace(rng, 100, 50, 2)
	// ~100 req/s * 50 s = ~5000 arrivals.
	if n := len(trace); n < 4500 || n > 5500 {
		t.Errorf("trace length %d, want ~5000", n)
	}
	prev := -1.0
	for i, a := range trace {
		if a.Time <= prev {
			t.Fatalf("arrival %d not strictly increasing", i)
		}
		if a.Time < 0 || a.Time >= 50 {
			t.Fatalf("arrival %d time %v outside horizon", i, a.Time)
		}
		if a.Items != 2 {
			t.Fatalf("arrival %d items %d", i, a.Items)
		}
		prev = a.Time
	}
}

func TestPoissonTraceDegenerate(t *testing.T) {
	rng := stats.NewRNG(2)
	if PoissonTrace(rng, 0, 10, 1) != nil {
		t.Error("zero rate should yield nil")
	}
	if PoissonTrace(rng, 10, 0, 1) != nil {
		t.Error("zero horizon should yield nil")
	}
	if PoissonTrace(rng, 10, 10, 0) != nil {
		t.Error("zero items should yield nil")
	}
}

func TestFrameTrace(t *testing.T) {
	trace := FrameTrace(30, 90)
	if len(trace) != 90 {
		t.Fatalf("frames %d", len(trace))
	}
	if trace[0].Time != 0 {
		t.Error("first frame not at 0")
	}
	if math.Abs(trace[30].Time-1) > 1e-9 {
		t.Errorf("frame 30 at %v, want 1s", trace[30].Time)
	}
	if FrameTrace(0, 5) != nil || FrameTrace(30, 0) != nil {
		t.Error("degenerate frame traces should be nil")
	}
}

func TestBatchTrace(t *testing.T) {
	trace := BatchTrace(10, 4)
	if len(trace) != 3 {
		t.Fatalf("batches %d, want 3", len(trace))
	}
	if trace[0].Items != 4 || trace[1].Items != 4 || trace[2].Items != 2 {
		t.Errorf("batch sizes %v", trace)
	}
	if TotalItems(trace) != 10 {
		t.Errorf("total %d, want 10", TotalItems(trace))
	}
	for _, a := range trace {
		if a.Time != 0 {
			t.Error("offline batches should all arrive at time 0")
		}
	}
	if BatchTrace(0, 4) != nil || BatchTrace(4, 0) != nil {
		t.Error("degenerate batch traces should be nil")
	}
}

func TestSLOTracker(t *testing.T) {
	slo := NewSLOTracker(0.0167)
	slo.Observe(0.010)
	slo.Observe(0.016)
	slo.Observe(0.020)
	slo.Observe(0.050)
	if slo.Met() != 2 || slo.Missed() != 2 {
		t.Errorf("met=%d missed=%d", slo.Met(), slo.Missed())
	}
	if r := slo.MissRate(); math.Abs(r-0.5) > 1e-12 {
		t.Errorf("miss rate %v", r)
	}
	if w := slo.WorstSeconds(); w != 0.050 {
		t.Errorf("worst %v", w)
	}
	if slo.String() == "" {
		t.Error("empty tracker string")
	}
}

func TestSLOTrackerEmpty(t *testing.T) {
	slo := NewSLOTracker(0.1)
	if slo.MissRate() != 0 {
		t.Error("empty tracker miss rate nonzero")
	}
}

// legacyPoissonTrace is the pre-stream slice generator, kept verbatim
// so the streaming rewrite is pinned to produce bit-identical schedules
// from the same seed.
func legacyPoissonTrace(rng *stats.RNG, ratePerSec, horizonSec float64, itemsPerReq int) []Arrival {
	if ratePerSec <= 0 || horizonSec <= 0 || itemsPerReq <= 0 {
		return nil
	}
	var out []Arrival
	t := 0.0
	exp := stats.Exponential{Lambda: ratePerSec}
	for {
		t += exp.Sample(rng)
		if t >= horizonSec {
			return out
		}
		out = append(out, Arrival{Time: t, Items: itemsPerReq})
	}
}

func TestPoissonTraceMatchesLegacyGenerator(t *testing.T) {
	want := legacyPoissonTrace(stats.NewRNG(7), 80, 20, 3)
	got := PoissonTrace(stats.NewRNG(7), 80, 20, 3)
	if len(got) != len(want) {
		t.Fatalf("stream-backed trace has %d arrivals, legacy %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("arrival %d: %+v != legacy %+v", i, got[i], want[i])
		}
	}
}

func TestArrivalStreamDeterminism(t *testing.T) {
	build := func() []Arrival {
		s := NewArrivalStream(stats.NewRNG(42), DiurnalRate(50, 30, 10), 80, 30, 2)
		var out []Arrival
		s.Each(func(a Arrival) bool { out = append(out, a); return true })
		return out
	}
	a, c := build(), build()
	if len(a) == 0 || len(a) != len(c) {
		t.Fatalf("schedules differ in length: %d vs %d", len(a), len(c))
	}
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("arrival %d differs: %+v vs %+v", i, a[i], c[i])
		}
	}
}

func TestArrivalStreamConstantMemoryAndOrdering(t *testing.T) {
	s := NewArrivalStream(stats.NewRNG(9), ConstantRate(200), 200, 100, 1)
	n, last := 0, -1.0
	for {
		a, ok := s.Next()
		if !ok {
			break
		}
		if a.Time <= last || a.Time >= 100 {
			t.Fatalf("arrival %d at %v out of order or past horizon (prev %v)", n, a.Time, last)
		}
		last = a.Time
		n++
	}
	if n < 18000 || n > 22000 {
		t.Errorf("%d arrivals, want ~20000", n)
	}
	// Exhausted stream stays exhausted.
	if _, ok := s.Next(); ok {
		t.Error("stream yielded after horizon")
	}
}

func TestRateShapes(t *testing.T) {
	if r := ConstantRate(5)(123); r != 5 {
		t.Errorf("constant rate %v", r)
	}
	d := DiurnalRate(10, 20, 100) // swings negative: must clamp at 0
	if r := d(75); r != 0 {
		t.Errorf("diurnal trough %v, want 0 (clamped)", r)
	}
	if r := d(25); math.Abs(r-30) > 1e-9 {
		t.Errorf("diurnal peak %v, want 30", r)
	}
	b := BurstRate(10, 100, 5, 1)
	if b(0.5) != 100 || b(3) != 10 || b(5.5) != 100 {
		t.Errorf("burst shape: %v %v %v", b(0.5), b(3), b(5.5))
	}
	rmp := RampRate(0, 100, 10)
	if rmp(0) != 0 || math.Abs(rmp(5)-50) > 1e-9 || rmp(12) != 100 {
		t.Errorf("ramp shape: %v %v %v", rmp(0), rmp(5), rmp(12))
	}
}

func TestArrivalStreamThinningMatchesShape(t *testing.T) {
	// A burst shape at 5x the base: arrivals inside burst windows should
	// be ~5x denser than outside.
	s := NewArrivalStream(stats.NewRNG(3), BurstRate(20, 100, 10, 2), 100, 200, 1)
	var inBurst, outBurst int
	s.Each(func(a Arrival) bool {
		if math.Mod(a.Time, 10) < 2 {
			inBurst++
		} else {
			outBurst++
		}
		return true
	})
	// Expected: burst windows 40 s * 100/s = 4000; base 160 s * 20/s = 3200.
	if inBurst < 3500 || inBurst > 4500 {
		t.Errorf("in-burst arrivals %d, want ~4000", inBurst)
	}
	if outBurst < 2800 || outBurst > 3600 {
		t.Errorf("out-of-burst arrivals %d, want ~3200", outBurst)
	}
}

func TestArrivalStreamDegenerate(t *testing.T) {
	if s := NewArrivalStream(stats.NewRNG(1), ConstantRate(0), 0, 10, 1); s != nil {
		t.Error("zero peak should yield nil stream")
	}
	if s := NewArrivalStream(nil, ConstantRate(1), 1, 10, 1); s != nil {
		t.Error("nil rng should yield nil stream")
	}
	var s *ArrivalStream
	if _, ok := s.Next(); ok {
		t.Error("nil stream yielded")
	}
}
