package workload

import (
	"math"
	"testing"

	"harvest/internal/stats"
)

func TestPoissonTraceRateAndOrdering(t *testing.T) {
	rng := stats.NewRNG(1)
	trace := PoissonTrace(rng, 100, 50, 2)
	// ~100 req/s * 50 s = ~5000 arrivals.
	if n := len(trace); n < 4500 || n > 5500 {
		t.Errorf("trace length %d, want ~5000", n)
	}
	prev := -1.0
	for i, a := range trace {
		if a.Time <= prev {
			t.Fatalf("arrival %d not strictly increasing", i)
		}
		if a.Time < 0 || a.Time >= 50 {
			t.Fatalf("arrival %d time %v outside horizon", i, a.Time)
		}
		if a.Items != 2 {
			t.Fatalf("arrival %d items %d", i, a.Items)
		}
		prev = a.Time
	}
}

func TestPoissonTraceDegenerate(t *testing.T) {
	rng := stats.NewRNG(2)
	if PoissonTrace(rng, 0, 10, 1) != nil {
		t.Error("zero rate should yield nil")
	}
	if PoissonTrace(rng, 10, 0, 1) != nil {
		t.Error("zero horizon should yield nil")
	}
	if PoissonTrace(rng, 10, 10, 0) != nil {
		t.Error("zero items should yield nil")
	}
}

func TestFrameTrace(t *testing.T) {
	trace := FrameTrace(30, 90)
	if len(trace) != 90 {
		t.Fatalf("frames %d", len(trace))
	}
	if trace[0].Time != 0 {
		t.Error("first frame not at 0")
	}
	if math.Abs(trace[30].Time-1) > 1e-9 {
		t.Errorf("frame 30 at %v, want 1s", trace[30].Time)
	}
	if FrameTrace(0, 5) != nil || FrameTrace(30, 0) != nil {
		t.Error("degenerate frame traces should be nil")
	}
}

func TestBatchTrace(t *testing.T) {
	trace := BatchTrace(10, 4)
	if len(trace) != 3 {
		t.Fatalf("batches %d, want 3", len(trace))
	}
	if trace[0].Items != 4 || trace[1].Items != 4 || trace[2].Items != 2 {
		t.Errorf("batch sizes %v", trace)
	}
	if TotalItems(trace) != 10 {
		t.Errorf("total %d, want 10", TotalItems(trace))
	}
	for _, a := range trace {
		if a.Time != 0 {
			t.Error("offline batches should all arrive at time 0")
		}
	}
	if BatchTrace(0, 4) != nil || BatchTrace(4, 0) != nil {
		t.Error("degenerate batch traces should be nil")
	}
}

func TestSLOTracker(t *testing.T) {
	slo := NewSLOTracker(0.0167)
	slo.Observe(0.010)
	slo.Observe(0.016)
	slo.Observe(0.020)
	slo.Observe(0.050)
	if slo.Met() != 2 || slo.Missed() != 2 {
		t.Errorf("met=%d missed=%d", slo.Met(), slo.Missed())
	}
	if r := slo.MissRate(); math.Abs(r-0.5) > 1e-12 {
		t.Errorf("miss rate %v", r)
	}
	if w := slo.WorstSeconds(); w != 0.050 {
		t.Errorf("worst %v", w)
	}
	if slo.String() == "" {
		t.Error("empty tracker string")
	}
}

func TestSLOTrackerEmpty(t *testing.T) {
	slo := NewSLOTracker(0.1)
	if slo.MissRate() != 0 {
		t.Error("empty tracker miss rate nonzero")
	}
}
