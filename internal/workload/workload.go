// Package workload generates the request patterns of the paper's three
// deployment scenarios (§2.2): Poisson open-loop traffic for online
// inference, full-dataset batch sweeps for offline inference, and
// fixed-FPS camera streams with deadlines for real-time inference.
package workload

import (
	"fmt"
	"math"

	"harvest/internal/stats"
)

// Arrival is one request arrival in a generated trace.
type Arrival struct {
	// Time is the arrival offset in seconds from trace start.
	Time float64
	// Items is the number of images in the request.
	Items int
}

// RateFn maps an offset (seconds from trace start) to an instantaneous
// arrival rate in requests/second. Rate shapes drive the
// non-homogeneous Poisson generator (ArrivalStream): the load harness
// uses them for diurnal, burst and ramp-to-failure traffic.
type RateFn func(tSec float64) float64

// ConstantRate is the homogeneous shape: ratePerSec at every offset.
func ConstantRate(ratePerSec float64) RateFn {
	return func(float64) float64 { return ratePerSec }
}

// DiurnalRate models a day/night cycle compressed to periodSec: a
// sinusoid around base with swing ±amplitude, clamped at zero. Peak
// rate is base+amplitude.
func DiurnalRate(base, amplitude, periodSec float64) RateFn {
	return func(t float64) float64 {
		v := base + amplitude*math.Sin(2*math.Pi*t/periodSec)
		if v < 0 {
			return 0
		}
		return v
	}
}

// BurstRate is a square wave: burst requests/second for the first
// burstSec of every periodSec window, base otherwise. Peak rate is
// max(base, burst).
func BurstRate(base, burst, periodSec, burstSec float64) RateFn {
	return func(t float64) float64 {
		if periodSec > 0 && math.Mod(t, periodSec) < burstSec {
			return burst
		}
		return base
	}
}

// StepRate holds base requests/second until atSec, then jumps to
// stepped and holds it — the load-step shape autoscaler experiments
// use to measure reaction time. Peak rate is max(base, stepped).
func StepRate(base, stepped, atSec float64) RateFn {
	return func(t float64) float64 {
		if t >= atSec {
			return stepped
		}
		return base
	}
}

// RampRate ramps linearly from start to end requests/second over
// horizonSec (holding end afterwards): the ramp-to-failure sweep shape.
// Peak rate is max(start, end).
func RampRate(start, end, horizonSec float64) RateFn {
	return func(t float64) float64 {
		if horizonSec <= 0 || t >= horizonSec {
			return end
		}
		return start + (end-start)*t/horizonSec
	}
}

// ArrivalStream generates a Poisson arrival process one arrival at a
// time, in O(1) memory, so multi-hour million-arrival load runs never
// materialize a trace slice. Non-homogeneous rates are drawn by Lewis
// thinning: candidate arrivals at peakRate, accepted with probability
// rate(t)/peakRate. For a constant rate equal to the peak no thinning
// variates are drawn, so the stream consumes the RNG exactly like the
// historical PoissonTrace and reproduces its schedules bit-for-bit.
type ArrivalStream struct {
	rng     *stats.RNG
	rate    RateFn
	peak    float64
	horizon float64
	items   int
	t       float64
	done    bool
}

// NewArrivalStream returns a stream of arrivals over [0, horizonSec)
// carrying itemsPerReq images each. peakRatePerSec must be ≥ the
// maximum of rate over the horizon (rates above it are clamped to it).
// Returns nil for non-positive peak, horizon or items.
func NewArrivalStream(rng *stats.RNG, rate RateFn, peakRatePerSec, horizonSec float64, itemsPerReq int) *ArrivalStream {
	if rng == nil || rate == nil || peakRatePerSec <= 0 || horizonSec <= 0 || itemsPerReq <= 0 {
		return nil
	}
	return &ArrivalStream{rng: rng, rate: rate, peak: peakRatePerSec, horizon: horizonSec, items: itemsPerReq}
}

// Next returns the next arrival, or ok=false once the horizon is
// reached (and forever after).
func (s *ArrivalStream) Next() (Arrival, bool) {
	if s == nil || s.done {
		return Arrival{}, false
	}
	for {
		s.t += s.rng.ExpFloat64() / s.peak
		if s.t >= s.horizon {
			s.done = true
			return Arrival{}, false
		}
		r := s.rate(s.t)
		// Accept without drawing a thinning variate when the rate is at
		// (or above) the peak: keeps the constant-rate stream
		// RNG-identical to the legacy slice generator.
		if r >= s.peak || (r > 0 && s.rng.Float64()*s.peak < r) {
			return Arrival{Time: s.t, Items: s.items}, true
		}
	}
}

// Each invokes fn for every remaining arrival in schedule order,
// stopping early if fn returns false.
func (s *ArrivalStream) Each(fn func(Arrival) bool) {
	for {
		a, ok := s.Next()
		if !ok || !fn(a) {
			return
		}
	}
}

// PoissonTrace generates open-loop arrivals with exponential
// inter-arrival times at ratePerSec requests/second over the horizon,
// each carrying itemsPerReq images. Used for the online scenario. It is
// a materializing wrapper over ArrivalStream (constant rate) and
// produces the identical schedule for the same seed; prefer the stream
// for long horizons.
func PoissonTrace(rng *stats.RNG, ratePerSec, horizonSec float64, itemsPerReq int) []Arrival {
	s := NewArrivalStream(rng, ConstantRate(ratePerSec), ratePerSec, horizonSec, itemsPerReq)
	var out []Arrival
	s.Each(func(a Arrival) bool {
		out = append(out, a)
		return true
	})
	return out
}

// FrameTrace generates a fixed-FPS camera stream of frames frames, one
// image each. Used for the real-time ground-vehicle scenario.
func FrameTrace(fps float64, frames int) []Arrival {
	if fps <= 0 || frames <= 0 {
		return nil
	}
	out := make([]Arrival, frames)
	period := 1 / fps
	for i := range out {
		out[i] = Arrival{Time: float64(i) * period, Items: 1}
	}
	return out
}

// BatchTrace generates the offline scenario: all data available at time
// zero, split into ceil(total/batch) requests of batch images (last one
// smaller).
func BatchTrace(totalItems, batch int) []Arrival {
	if totalItems <= 0 || batch <= 0 {
		return nil
	}
	var out []Arrival
	for rem := totalItems; rem > 0; rem -= batch {
		n := batch
		if rem < batch {
			n = rem
		}
		out = append(out, Arrival{Items: n})
	}
	return out
}

// TotalItems sums the items of a trace.
func TotalItems(trace []Arrival) int {
	t := 0
	for _, a := range trace {
		t += a.Items
	}
	return t
}

// SLOTracker accounts deadline hits and misses for real-time pipelines.
type SLOTracker struct {
	DeadlineSeconds float64
	met, missed     int
	worst           float64
}

// NewSLOTracker creates a tracker for the given deadline.
func NewSLOTracker(deadlineSeconds float64) *SLOTracker {
	return &SLOTracker{DeadlineSeconds: deadlineSeconds}
}

// Observe records one end-to-end latency.
func (t *SLOTracker) Observe(latencySeconds float64) {
	if latencySeconds <= t.DeadlineSeconds {
		t.met++
	} else {
		t.missed++
	}
	if latencySeconds > t.worst {
		t.worst = latencySeconds
	}
}

// Met and Missed return the counters.
func (t *SLOTracker) Met() int { return t.met }

// Missed returns the number of deadline violations.
func (t *SLOTracker) Missed() int { return t.missed }

// MissRate returns the fraction of observations over deadline.
func (t *SLOTracker) MissRate() float64 {
	total := t.met + t.missed
	if total == 0 {
		return 0
	}
	return float64(t.missed) / float64(total)
}

// WorstSeconds returns the maximum observed latency.
func (t *SLOTracker) WorstSeconds() float64 { return t.worst }

// String summarizes the tracker.
func (t *SLOTracker) String() string {
	return fmt.Sprintf("deadline=%.1fms met=%d missed=%d missRate=%.2f%% worst=%.1fms",
		t.DeadlineSeconds*1000, t.met, t.missed, t.MissRate()*100, t.worst*1000)
}
