// Package workload generates the request patterns of the paper's three
// deployment scenarios (§2.2): Poisson open-loop traffic for online
// inference, full-dataset batch sweeps for offline inference, and
// fixed-FPS camera streams with deadlines for real-time inference.
package workload

import (
	"fmt"

	"harvest/internal/stats"
)

// Arrival is one request arrival in a generated trace.
type Arrival struct {
	// Time is the arrival offset in seconds from trace start.
	Time float64
	// Items is the number of images in the request.
	Items int
}

// PoissonTrace generates open-loop arrivals with exponential
// inter-arrival times at ratePerSec requests/second over the horizon,
// each carrying itemsPerReq images. Used for the online scenario.
func PoissonTrace(rng *stats.RNG, ratePerSec, horizonSec float64, itemsPerReq int) []Arrival {
	if ratePerSec <= 0 || horizonSec <= 0 || itemsPerReq <= 0 {
		return nil
	}
	var out []Arrival
	t := 0.0
	exp := stats.Exponential{Lambda: ratePerSec}
	for {
		t += exp.Sample(rng)
		if t >= horizonSec {
			return out
		}
		out = append(out, Arrival{Time: t, Items: itemsPerReq})
	}
}

// FrameTrace generates a fixed-FPS camera stream of frames frames, one
// image each. Used for the real-time ground-vehicle scenario.
func FrameTrace(fps float64, frames int) []Arrival {
	if fps <= 0 || frames <= 0 {
		return nil
	}
	out := make([]Arrival, frames)
	period := 1 / fps
	for i := range out {
		out[i] = Arrival{Time: float64(i) * period, Items: 1}
	}
	return out
}

// BatchTrace generates the offline scenario: all data available at time
// zero, split into ceil(total/batch) requests of batch images (last one
// smaller).
func BatchTrace(totalItems, batch int) []Arrival {
	if totalItems <= 0 || batch <= 0 {
		return nil
	}
	var out []Arrival
	for rem := totalItems; rem > 0; rem -= batch {
		n := batch
		if rem < batch {
			n = rem
		}
		out = append(out, Arrival{Items: n})
	}
	return out
}

// TotalItems sums the items of a trace.
func TotalItems(trace []Arrival) int {
	t := 0
	for _, a := range trace {
		t += a.Items
	}
	return t
}

// SLOTracker accounts deadline hits and misses for real-time pipelines.
type SLOTracker struct {
	DeadlineSeconds float64
	met, missed     int
	worst           float64
}

// NewSLOTracker creates a tracker for the given deadline.
func NewSLOTracker(deadlineSeconds float64) *SLOTracker {
	return &SLOTracker{DeadlineSeconds: deadlineSeconds}
}

// Observe records one end-to-end latency.
func (t *SLOTracker) Observe(latencySeconds float64) {
	if latencySeconds <= t.DeadlineSeconds {
		t.met++
	} else {
		t.missed++
	}
	if latencySeconds > t.worst {
		t.worst = latencySeconds
	}
}

// Met and Missed return the counters.
func (t *SLOTracker) Met() int { return t.met }

// Missed returns the number of deadline violations.
func (t *SLOTracker) Missed() int { return t.missed }

// MissRate returns the fraction of observations over deadline.
func (t *SLOTracker) MissRate() float64 {
	total := t.met + t.missed
	if total == 0 {
		return 0
	}
	return float64(t.missed) / float64(total)
}

// WorstSeconds returns the maximum observed latency.
func (t *SLOTracker) WorstSeconds() float64 { return t.worst }

// String summarizes the tracker.
func (t *SLOTracker) String() string {
	return fmt.Sprintf("deadline=%.1fms met=%d missed=%d missRate=%.2f%% worst=%.1fms",
		t.DeadlineSeconds*1000, t.met, t.missed, t.MissRate()*100, t.worst*1000)
}
