package energy

import (
	"math"
	"testing"

	"harvest/internal/hw"
)

func TestPowerAtBounds(t *testing.T) {
	m := New(hw.Jetson())
	idle := m.PowerAt(0)
	full := m.PowerAt(1)
	if math.Abs(idle-25*0.3) > 1e-9 {
		t.Errorf("idle power %v, want %v", idle, 25*0.3)
	}
	if math.Abs(full-25) > 1e-9 {
		t.Errorf("full power %v, want 25", full)
	}
	// Clamping.
	if m.PowerAt(-1) != idle || m.PowerAt(2) != full {
		t.Error("MFU clamping broken")
	}
	// Monotone in utilization.
	if !(m.PowerAt(0.5) > idle && m.PowerAt(0.5) < full) {
		t.Error("power not interpolating")
	}
}

func TestJoulesPerImage(t *testing.T) {
	m := New(hw.A100())
	j, err := m.JoulesPerImage(1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(j-0.4) > 1e-9 { // 400W / 1000 img/s
		t.Errorf("J/img %v, want 0.4", j)
	}
	if _, err := m.JoulesPerImage(0, 1); err == nil {
		t.Error("zero throughput accepted")
	}
}

func TestImagesPerJouleInverse(t *testing.T) {
	m := New(hw.V100())
	j, err := m.JoulesPerImage(500, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ipj, err := m.ImagesPerJoule(500, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(j*ipj-1) > 1e-9 {
		t.Errorf("J/img * img/J = %v", j*ipj)
	}
}

func TestBatchAndCampaignJoules(t *testing.T) {
	m := New(hw.A100())
	if bj := m.BatchJoules(2, 1); math.Abs(bj-800) > 1e-9 {
		t.Errorf("batch joules %v, want 800", bj)
	}
	cj, err := m.CampaignJoules(1000, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cj-4000) > 1e-9 { // 1000 * 400/100
		t.Errorf("campaign joules %v, want 4000", cj)
	}
	if _, err := m.CampaignJoules(10, 0, 1); err == nil {
		t.Error("zero throughput campaign accepted")
	}
}

func TestJetsonWinsImagesPerJouleAtLowUtil(t *testing.T) {
	// The extension's headline: at comparable MFU, the 25W Jetson
	// yields more images per joule than the 400W A100 whenever its
	// throughput is more than 25/400 of the A100's.
	jm := New(hw.Jetson())
	am := New(hw.A100())
	jIPJ, err := jm.ImagesPerJoule(1124, 0.13) // Jetson ViT_Tiny e2e
	if err != nil {
		t.Fatal(err)
	}
	aIPJ, err := am.ImagesPerJoule(14630, 0.08) // A100 ViT_Tiny e2e
	if err != nil {
		t.Fatal(err)
	}
	if jIPJ <= aIPJ {
		t.Errorf("Jetson %v img/J not above A100 %v img/J for ViT_Tiny", jIPJ, aIPJ)
	}
}
