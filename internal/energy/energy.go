// Package energy models per-inference energy consumption from the
// Table 1 power budgets, quantifying the paper's §5 guidance that
// deployments must balance "latency requirements with energy efficiency
// and memory utilization". The Jetson's 25 W mode is the reason edge
// deployment can win on images-per-joule despite losing on raw
// throughput.
package energy

import (
	"fmt"

	"harvest/internal/hw"
)

// Model converts throughput and utilization into energy metrics for a
// platform.
type Model struct {
	Platform *hw.Platform
	// IdleFraction is the fraction of the power budget drawn when the
	// accelerator is idle (static + host overhead). Defaults to 0.3,
	// a typical figure for both datacenter GPUs and Jetson modules.
	IdleFraction float64
}

// New creates an energy model for the platform.
func New(p *hw.Platform) *Model {
	return &Model{Platform: p, IdleFraction: 0.3}
}

// PowerAt returns the modeled power draw in watts when the engine runs
// at the given MFU: idle power plus utilization-proportional dynamic
// power.
func (m *Model) PowerAt(mfu float64) float64 {
	if mfu < 0 {
		mfu = 0
	}
	if mfu > 1 {
		mfu = 1
	}
	idle := m.Platform.PowerW * m.IdleFraction
	return idle + (m.Platform.PowerW-idle)*mfu
}

// JoulesPerImage returns the energy per image at the given throughput
// and utilization.
func (m *Model) JoulesPerImage(imgPerSec, mfu float64) (float64, error) {
	if imgPerSec <= 0 {
		return 0, fmt.Errorf("energy: non-positive throughput %v", imgPerSec)
	}
	return m.PowerAt(mfu) / imgPerSec, nil
}

// ImagesPerJoule is the figure of merit for battery-powered edge
// deployments (a ground vehicle's inference budget per charge).
func (m *Model) ImagesPerJoule(imgPerSec, mfu float64) (float64, error) {
	j, err := m.JoulesPerImage(imgPerSec, mfu)
	if err != nil {
		return 0, err
	}
	return 1 / j, nil
}

// BatchJoules returns energy to execute one batch.
func (m *Model) BatchJoules(batchSeconds, mfu float64) float64 {
	return m.PowerAt(mfu) * batchSeconds
}

// CampaignJoules estimates the energy to process an offline campaign of
// totalImages at the given steady state.
func (m *Model) CampaignJoules(totalImages int, imgPerSec, mfu float64) (float64, error) {
	j, err := m.JoulesPerImage(imgPerSec, mfu)
	if err != nil {
		return 0, err
	}
	return float64(totalImages) * j, nil
}
