package sim

import (
	"testing"
	"testing/quick"

	"harvest/internal/stats"
)

// TestResourceConservation checks that every submitted job completes
// exactly once, for random job sets and capacities.
func TestResourceConservation(t *testing.T) {
	f := func(seed uint16) bool {
		r := stats.NewRNG(uint64(seed))
		s := New()
		capacity := 1 + r.Intn(4)
		res := NewResource(s, "pool", capacity)
		n := 1 + r.Intn(50)
		completions := 0
		for i := 0; i < n; i++ {
			delay := r.Float64() * 10
			dur := r.Float64() * 2
			s.Schedule(delay, func() {
				res.Submit(dur, func(_, _ float64) { completions++ })
			})
		}
		s.Run()
		return completions == n && res.JobsCompleted() == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestResourceBusyTimeEqualsWork checks accumulated busy time equals
// the sum of service durations.
func TestResourceBusyTimeEqualsWork(t *testing.T) {
	f := func(seed uint16) bool {
		r := stats.NewRNG(uint64(seed))
		s := New()
		res := NewResource(s, "x", 1+r.Intn(3))
		n := 1 + r.Intn(30)
		var want float64
		for i := 0; i < n; i++ {
			d := r.Float64()
			want += d
			res.Submit(d, nil)
		}
		s.Run()
		diff := res.BusySeconds() - want
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestMakespanLowerBound checks the simulated makespan is at least
// total work divided by capacity (no resource can beat perfect
// packing).
func TestMakespanLowerBound(t *testing.T) {
	f := func(seed uint16) bool {
		r := stats.NewRNG(uint64(seed))
		s := New()
		capacity := 1 + r.Intn(4)
		res := NewResource(s, "x", capacity)
		n := 1 + r.Intn(40)
		var total float64
		for i := 0; i < n; i++ {
			d := 0.1 + r.Float64()
			total += d
			res.Submit(d, nil)
		}
		end := s.Run()
		return end >= total/float64(capacity)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
