package sim

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(3, func() { order = append(order, 3) })
	s.Schedule(1, func() { order = append(order, 1) })
	s.Schedule(2, func() { order = append(order, 2) })
	end := s.Run()
	if end != 3 {
		t.Errorf("final time %v, want 3", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order %v", order)
	}
}

func TestTieBreakFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var times []float64
	s.Schedule(1, func() {
		times = append(times, s.Now())
		s.Schedule(2, func() {
			times = append(times, s.Now())
		})
	})
	s.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Errorf("nested event times %v, want [1 3]", times)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	s := New()
	ran := false
	s.Schedule(5, func() {
		s.Schedule(-10, func() { ran = true })
	})
	s.Run()
	if !ran {
		t.Error("negative-delay event dropped")
	}
	if s.Now() != 5 {
		t.Errorf("clock %v, want 5", s.Now())
	}
}

func TestScheduleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil event accepted")
		}
	}()
	New().Schedule(1, nil)
}

func TestRunUntil(t *testing.T) {
	s := New()
	var ran []float64
	for _, d := range []float64{1, 2, 3, 4} {
		d := d
		s.Schedule(d, func() { ran = append(ran, d) })
	}
	s.RunUntil(2.5)
	if len(ran) != 2 {
		t.Fatalf("RunUntil(2.5) ran %d events", len(ran))
	}
	if s.Now() != 2.5 {
		t.Errorf("clock %v, want 2.5", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("pending %d, want 2", s.Pending())
	}
	s.Run()
	if len(ran) != 4 {
		t.Error("remaining events lost")
	}
}

func TestResourceSerializesUnitCapacity(t *testing.T) {
	s := New()
	r := NewResource(s, "gpu", 1)
	var ends []float64
	for i := 0; i < 3; i++ {
		r.Submit(2, func(_, end float64) { ends = append(ends, end) })
	}
	s.Run()
	want := []float64{2, 4, 6}
	for i, e := range ends {
		if e != want[i] {
			t.Errorf("end[%d] = %v, want %v", i, e, want[i])
		}
	}
	if r.JobsCompleted() != 3 {
		t.Errorf("completed %d", r.JobsCompleted())
	}
	if u := r.Utilization(6); u != 1 {
		t.Errorf("utilization %v, want 1", u)
	}
}

func TestResourceParallelCapacity(t *testing.T) {
	s := New()
	r := NewResource(s, "cpus", 2)
	var ends []float64
	for i := 0; i < 4; i++ {
		r.Submit(3, func(_, end float64) { ends = append(ends, end) })
	}
	s.Run()
	// Two servers: jobs end at 3,3,6,6.
	count3, count6 := 0, 0
	for _, e := range ends {
		switch e {
		case 3:
			count3++
		case 6:
			count6++
		default:
			t.Fatalf("unexpected end time %v", e)
		}
	}
	if count3 != 2 || count6 != 2 {
		t.Errorf("ends %v, want two at 3 and two at 6", ends)
	}
	if u := r.Utilization(6); u != 1 {
		t.Errorf("utilization %v", u)
	}
	if r.PeakInFlight() != 4 {
		t.Errorf("peak in flight %d, want 4", r.PeakInFlight())
	}
}

func TestResourceStartAfterSubmitTime(t *testing.T) {
	s := New()
	r := NewResource(s, "gpu", 1)
	var start1 float64
	s.Schedule(10, func() {
		r.Submit(1, func(st, _ float64) { start1 = st })
	})
	s.Run()
	if start1 != 10 {
		t.Errorf("job started at %v, want 10 (submission time)", start1)
	}
}

func TestResourcePipelining(t *testing.T) {
	// Two-stage pipeline: stage A 1s, stage B 2s, 3 items. With
	// pipelining the makespan is 1 + 3*2 = 7, not 3*(1+2) = 9.
	s := New()
	a := NewResource(s, "A", 1)
	b := NewResource(s, "B", 1)
	var makespan float64
	for i := 0; i < 3; i++ {
		a.Submit(1, func(_, _ float64) {
			b.Submit(2, func(_, end float64) {
				if end > makespan {
					makespan = end
				}
			})
		})
	}
	s.Run()
	if makespan != 7 {
		t.Errorf("pipelined makespan %v, want 7", makespan)
	}
}

func TestResourceZeroAndNegativeDuration(t *testing.T) {
	s := New()
	r := NewResource(s, "x", 1)
	done := 0
	r.Submit(0, func(_, _ float64) { done++ })
	r.Submit(-5, func(_, _ float64) { done++ })
	s.Run()
	if done != 2 {
		t.Errorf("zero/negative duration jobs completed %d, want 2", done)
	}
}

func TestNewResourcePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-capacity resource accepted")
		}
	}()
	NewResource(New(), "bad", 0)
}

func TestResourceNilCallback(t *testing.T) {
	s := New()
	r := NewResource(s, "x", 1)
	r.Submit(1, nil)
	s.Run()
	if r.JobsCompleted() != 1 {
		t.Error("nil-callback job lost")
	}
}
