// Package sim is a small discrete-event simulator used to model the
// overlapped execution of the HARVEST inference pipeline (preprocessing,
// host-device transfer and engine inference proceeding concurrently on
// different resources), which is the mechanism behind the paper's
// Fig. 8 end-to-end results.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// event is a scheduled callback.
type event struct {
	time float64
	seq  int64 // tie-breaker preserving schedule order
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event simulation with a virtual clock in seconds.
type Sim struct {
	now    float64
	seq    int64
	events eventHeap
}

// New returns an empty simulation at time zero.
func New() *Sim { return &Sim{} }

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// Schedule runs fn after delay seconds of virtual time. Negative delays
// are clamped to zero (run "now", after currently executing events).
func (s *Sim) Schedule(delay float64, fn func()) {
	if fn == nil {
		panic("sim: scheduling nil event")
	}
	if delay < 0 || math.IsNaN(delay) {
		delay = 0
	}
	s.seq++
	heap.Push(&s.events, &event{time: s.now + delay, seq: s.seq, fn: fn})
}

// Run processes events until none remain and returns the final time.
func (s *Sim) Run() float64 {
	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(*event)
		if e.time < s.now {
			panic(fmt.Sprintf("sim: time went backwards: %v < %v", e.time, s.now))
		}
		s.now = e.time
		e.fn()
	}
	return s.now
}

// RunUntil processes events with time <= t, then advances the clock to
// t. Remaining events stay queued.
func (s *Sim) RunUntil(t float64) {
	for s.events.Len() > 0 && s.events[0].time <= t {
		e := heap.Pop(&s.events).(*event)
		s.now = e.time
		e.fn()
	}
	if t > s.now {
		s.now = t
	}
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return s.events.Len() }
