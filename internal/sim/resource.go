package sim

import "fmt"

// Resource models a server pool (a GPU engine, a copy engine, a CPU
// worker pool) with a fixed number of parallel servers and FIFO
// queueing. Work is submitted with a known service duration; the
// resource tracks queueing, start and completion times and accumulates
// utilization statistics.
type Resource struct {
	Name string

	sim      *Sim
	capacity int
	// freeAt holds the next-free virtual time of each server.
	freeAt []float64

	busySeconds   float64
	jobsCompleted int64
	queuedPeak    int
	inFlight      int
}

// NewResource creates a resource with the given parallelism.
func NewResource(s *Sim, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %q with capacity %d", name, capacity))
	}
	return &Resource{Name: name, sim: s, capacity: capacity, freeAt: make([]float64, capacity)}
}

// Submit enqueues a job of the given service duration. onDone (may be
// nil) runs at the job's completion time with the job's (start, end)
// times. FIFO order among submissions is preserved because each job is
// assigned to the earliest-available server at submission time; this
// matches the behaviour of a work queue drained by identical servers
// when jobs are submitted in non-decreasing time order, as all users in
// this repository do.
func (r *Resource) Submit(duration float64, onDone func(start, end float64)) {
	if duration < 0 {
		duration = 0
	}
	// Pick the earliest-free server.
	best := 0
	for i, t := range r.freeAt {
		if t < r.freeAt[best] {
			best = i
		}
	}
	start := r.freeAt[best]
	if start < r.sim.Now() {
		start = r.sim.Now()
	}
	end := start + duration
	r.freeAt[best] = end
	r.busySeconds += duration
	r.inFlight++
	if r.inFlight > r.queuedPeak {
		r.queuedPeak = r.inFlight
	}
	r.sim.Schedule(end-r.sim.Now(), func() {
		r.jobsCompleted++
		r.inFlight--
		if onDone != nil {
			onDone(start, end)
		}
	})
}

// BusySeconds returns total service time accumulated.
func (r *Resource) BusySeconds() float64 { return r.busySeconds }

// JobsCompleted returns the number of finished jobs.
func (r *Resource) JobsCompleted() int64 { return r.jobsCompleted }

// Utilization returns busy time divided by (capacity * horizon).
func (r *Resource) Utilization(horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	return r.busySeconds / (float64(r.capacity) * horizon)
}

// PeakInFlight returns the maximum number of jobs queued or running at
// once.
func (r *Resource) PeakInFlight() int { return r.queuedPeak }
