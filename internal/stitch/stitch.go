// Package stitch implements the offline UAS workflow substrate of the
// paper's Fig. 3a: drone images are stitched into an orthomosaic
// (OpenDroneMap's role in the paper), then tiled for the HARVEST
// inference pipeline.
package stitch

import (
	"fmt"

	"harvest/internal/imaging"
)

// Grid holds drone captures arranged as a flight grid with a known
// overlap in pixels between adjacent captures.
type Grid struct {
	Rows, Cols int
	// Overlap is the pixel overlap between adjacent tiles (both axes).
	Overlap int
	// Tiles is row-major, all the same size.
	Tiles []*imaging.Image
}

// NewGrid validates and wraps a capture grid.
func NewGrid(rows, cols, overlap int, tiles []*imaging.Image) (*Grid, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("stitch: invalid grid %dx%d", rows, cols)
	}
	if len(tiles) != rows*cols {
		return nil, fmt.Errorf("stitch: got %d tiles for %dx%d grid", len(tiles), rows, cols)
	}
	w, h := tiles[0].W, tiles[0].H
	for i, t := range tiles {
		if t.W != w || t.H != h {
			return nil, fmt.Errorf("stitch: tile %d is %dx%d, want %dx%d", i, t.W, t.H, w, h)
		}
	}
	if overlap < 0 || overlap >= w || overlap >= h {
		return nil, fmt.Errorf("stitch: overlap %d out of range for %dx%d tiles", overlap, w, h)
	}
	return &Grid{Rows: rows, Cols: cols, Overlap: overlap, Tiles: tiles}, nil
}

// Mosaic stitches the grid into one orthomosaic, feather-blending the
// overlap bands so seams are smooth (a linear cross-fade, the standard
// simple blend).
func (g *Grid) Mosaic() *imaging.Image {
	tw, th := g.Tiles[0].W, g.Tiles[0].H
	stepX, stepY := tw-g.Overlap, th-g.Overlap
	outW := stepX*(g.Cols-1) + tw
	outH := stepY*(g.Rows-1) + th
	// Accumulate weighted contributions.
	acc := make([]float64, outW*outH*3)
	wacc := make([]float64, outW*outH)

	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			tile := g.Tiles[r*g.Cols+c]
			ox, oy := c*stepX, r*stepY
			for y := 0; y < th; y++ {
				wy := featherWeight(y, th, g.Overlap, r > 0, r < g.Rows-1)
				for x := 0; x < tw; x++ {
					wx := featherWeight(x, tw, g.Overlap, c > 0, c < g.Cols-1)
					wgt := wx * wy
					di := (oy+y)*outW + ox + x
					si := (y*tw + x) * 3
					acc[di*3] += wgt * float64(tile.Pix[si])
					acc[di*3+1] += wgt * float64(tile.Pix[si+1])
					acc[di*3+2] += wgt * float64(tile.Pix[si+2])
					wacc[di] += wgt
				}
			}
		}
	}
	out := imaging.NewImage(outW, outH)
	for i, wgt := range wacc {
		if wgt <= 0 {
			continue
		}
		for c := 0; c < 3; c++ {
			v := acc[i*3+c] / wgt
			if v > 255 {
				v = 255
			}
			out.Pix[i*3+c] = uint8(v + 0.5)
		}
	}
	return out
}

// featherWeight ramps linearly from 0 to 1 across the overlap band on
// sides that have a neighbour, and is 1 elsewhere.
func featherWeight(i, size, overlap int, hasPrev, hasNext bool) float64 {
	w := 1.0
	if hasPrev && i < overlap {
		w = (float64(i) + 1) / float64(overlap+1)
	}
	if hasNext && i >= size-overlap {
		wn := float64(size-i) / float64(overlap+1)
		if wn < w {
			w = wn
		}
	}
	return w
}

// Tile is one inference tile cut from a mosaic.
type Tile struct {
	X, Y  int // tile grid coordinates
	PixX  int // top-left pixel offset in the mosaic
	PixY  int
	Image *imaging.Image
}

// TileImage cuts the mosaic into size x size tiles with the given
// stride (stride == size means non-overlapping). Partial edge tiles are
// discarded, as the HARVEST offline pipeline does.
func TileImage(m *imaging.Image, size, stride int) ([]Tile, error) {
	if size <= 0 || stride <= 0 {
		return nil, fmt.Errorf("stitch: invalid tile size %d / stride %d", size, stride)
	}
	if m.W < size || m.H < size {
		return nil, fmt.Errorf("stitch: mosaic %dx%d smaller than tile %d", m.W, m.H, size)
	}
	var out []Tile
	ty := 0
	for y := 0; y+size <= m.H; y += stride {
		tx := 0
		for x := 0; x+size <= m.W; x += stride {
			t := imaging.NewImage(size, size)
			for row := 0; row < size; row++ {
				srcOff := ((y+row)*m.W + x) * 3
				copy(t.Pix[row*size*3:(row+1)*size*3], m.Pix[srcOff:srcOff+size*3])
			}
			out = append(out, Tile{X: tx, Y: ty, PixX: x, PixY: y, Image: t})
			tx++
		}
		ty++
	}
	return out, nil
}

// GridDims returns the tile-grid dimensions TileImage produces for a
// mosaic of the given size.
func GridDims(w, h, size, stride int) (cols, rows int) {
	if size <= 0 || stride <= 0 || w < size || h < size {
		return 0, 0
	}
	return (w-size)/stride + 1, (h-size)/stride + 1
}
