package stitch

import (
	"testing"

	"harvest/internal/imaging"
	"harvest/internal/stats"
)

func uniformTiles(n int, w, h int, v uint8) []*imaging.Image {
	out := make([]*imaging.Image, n)
	for i := range out {
		im := imaging.NewImage(w, h)
		for j := range im.Pix {
			im.Pix[j] = v
		}
		out[i] = im
	}
	return out
}

func TestNewGridValidation(t *testing.T) {
	tiles := uniformTiles(4, 16, 16, 100)
	if _, err := NewGrid(2, 2, 4, tiles); err != nil {
		t.Fatal(err)
	}
	if _, err := NewGrid(0, 2, 4, tiles); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := NewGrid(2, 2, 4, tiles[:3]); err == nil {
		t.Error("wrong tile count accepted")
	}
	if _, err := NewGrid(2, 2, 16, tiles); err == nil {
		t.Error("overlap == tile size accepted")
	}
	mixed := uniformTiles(4, 16, 16, 100)
	mixed[2] = imaging.NewImage(8, 8)
	if _, err := NewGrid(2, 2, 4, mixed); err == nil {
		t.Error("mismatched tile sizes accepted")
	}
}

func TestMosaicDimensions(t *testing.T) {
	g, err := NewGrid(2, 3, 4, uniformTiles(6, 16, 16, 50))
	if err != nil {
		t.Fatal(err)
	}
	m := g.Mosaic()
	wantW := (16-4)*2 + 16 // 40
	wantH := (16-4)*1 + 16 // 28
	if m.W != wantW || m.H != wantH {
		t.Errorf("mosaic %dx%d, want %dx%d", m.W, m.H, wantW, wantH)
	}
}

func TestMosaicUniformBlendExact(t *testing.T) {
	// Blending identical tiles must reproduce the constant value
	// everywhere (feathering is a convex combination).
	g, err := NewGrid(3, 3, 6, uniformTiles(9, 20, 20, 173))
	if err != nil {
		t.Fatal(err)
	}
	m := g.Mosaic()
	for i, p := range m.Pix {
		if p != 173 {
			t.Fatalf("pixel %d = %d, want 173", i, p)
		}
	}
}

func TestMosaicNoOverlapIsConcatenation(t *testing.T) {
	a := imaging.NewImage(4, 4)
	b := imaging.NewImage(4, 4)
	for i := range a.Pix {
		a.Pix[i] = 10
		b.Pix[i] = 200
	}
	g, err := NewGrid(1, 2, 0, []*imaging.Image{a, b})
	if err != nil {
		t.Fatal(err)
	}
	m := g.Mosaic()
	if m.W != 8 || m.H != 4 {
		t.Fatalf("mosaic %dx%d", m.W, m.H)
	}
	if r, _, _ := m.At(0, 0); r != 10 {
		t.Error("left tile lost")
	}
	if r, _, _ := m.At(7, 3); r != 200 {
		t.Error("right tile lost")
	}
}

func TestTileImage(t *testing.T) {
	src := imaging.Synthesize(64, 48, imaging.KindRows, stats.NewRNG(1))
	tiles, err := TileImage(src, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	cols, rows := GridDims(64, 48, 16, 16)
	if cols != 4 || rows != 3 {
		t.Fatalf("grid %dx%d", cols, rows)
	}
	if len(tiles) != 12 {
		t.Fatalf("tiles %d", len(tiles))
	}
	// Tile contents match the source region.
	for _, tile := range tiles {
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				tr, tg, tb := tile.Image.At(x, y)
				sr, sg, sb := src.At(tile.PixX+x, tile.PixY+y)
				if tr != sr || tg != sg || tb != sb {
					t.Fatalf("tile (%d,%d) pixel mismatch", tile.X, tile.Y)
				}
			}
		}
	}
}

func TestTileImageOverlappingStride(t *testing.T) {
	src := imaging.Synthesize(32, 32, imaging.KindSoil, stats.NewRNG(2))
	tiles, err := TileImage(src, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	cols, rows := GridDims(32, 32, 16, 8)
	if cols != 3 || rows != 3 || len(tiles) != 9 {
		t.Errorf("overlapping tiling %dx%d with %d tiles", cols, rows, len(tiles))
	}
}

func TestTileImageErrors(t *testing.T) {
	src := imaging.NewImage(8, 8)
	if _, err := TileImage(src, 0, 4); err == nil {
		t.Error("zero tile size accepted")
	}
	if _, err := TileImage(src, 4, 0); err == nil {
		t.Error("zero stride accepted")
	}
	if _, err := TileImage(src, 16, 16); err == nil {
		t.Error("tile larger than mosaic accepted")
	}
	if c, r := GridDims(8, 8, 16, 16); c != 0 || r != 0 {
		t.Error("GridDims should be 0 for oversized tiles")
	}
}

func TestStitchThenTileRoundTrip(t *testing.T) {
	// Integration: stitch a grid, tile it back at the capture step, and
	// confirm interior (non-overlap) pixels survive.
	rng := stats.NewRNG(3)
	tiles := make([]*imaging.Image, 4)
	for i := range tiles {
		tiles[i] = imaging.Synthesize(20, 20, imaging.KindLeaf, rng.Split())
	}
	g, err := NewGrid(2, 2, 0, tiles)
	if err != nil {
		t.Fatal(err)
	}
	m := g.Mosaic()
	back, err := TileImage(m, 20, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 4 {
		t.Fatalf("round trip gave %d tiles", len(back))
	}
	for i, tile := range back {
		for j := range tile.Image.Pix {
			if tile.Image.Pix[j] != tiles[i].Pix[j] {
				t.Fatalf("tile %d pixel %d changed", i, j)
			}
		}
	}
}
