package stream

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"harvest/internal/metrics"
	"harvest/internal/serve"
)

// Handler serves the streaming ingest API:
//
//	POST /v2/streams/{camera}?model=NAME&budget_ms=16.7
//
// The request body is a long-lived NDJSON stream of Frame lines; the
// chunked response carries one Outcome line per frame (completion
// order, not arrival order — a dropped frame's outcome beats a served
// one that is still computing) and a final Summary line when the
// camera closes its side. The response headers flush immediately so
// the client can stream against a live connection.
func (ing *Ingest) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v2/streams/{camera}", ing.handleStream)
	return mux
}

func (ing *Ingest) handleStream(w http.ResponseWriter, r *http.Request) {
	camera := r.PathValue("camera")
	if camera == "" {
		http.Error(w, "stream: camera id required", http.StatusBadRequest)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "stream: response writer cannot stream", http.StatusInternalServerError)
		return
	}
	// The session interleaves reads (frames) with writes (outcomes) on
	// one HTTP/1 exchange. Without full duplex the server would drain
	// the request body — endless, for a live camera — before letting
	// the first outcome out.
	if err := http.NewResponseController(w).EnableFullDuplex(); err != nil {
		http.Error(w, "stream: full-duplex unsupported: "+err.Error(), http.StatusInternalServerError)
		return
	}
	var budget time.Duration
	if s := r.URL.Query().Get("budget_ms"); s != "" {
		var ms float64
		if _, err := fmt.Sscanf(s, "%g", &ms); err != nil || ms <= 0 {
			http.Error(w, "stream: invalid budget_ms", http.StatusBadRequest)
			return
		}
		budget = time.Duration(ms * float64(time.Millisecond))
	}
	tenant := r.URL.Query().Get("tenant")
	if tenant == "" {
		tenant = r.Header.Get(serve.TenantHeader)
	}
	sess, err := ing.Open(camera, r.URL.Query().Get("model"), tenant, budget)
	if err != nil {
		code := http.StatusBadRequest
		if strings.Contains(err.Error(), ErrSessionActive.Error()) {
			code = http.StatusConflict
		}
		http.Error(w, err.Error(), code)
		return
	}
	defer sess.Close()
	w.Header().Set(serve.TenantHeader, sess.Tenant)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	// Outcomes complete on arbitrary goroutines; serialize the writes.
	var emitMu sync.Mutex
	enc := json.NewEncoder(w)
	emit := func(o Outcome) {
		emitMu.Lock()
		defer emitMu.Unlock()
		if enc.Encode(o) == nil {
			flusher.Flush()
		}
	}

	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64<<10), ing.cfg.maxFrameBytes())
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var f Frame
		if err := json.Unmarshal(line, &f); err != nil {
			emit(Outcome{Outcome: OutcomeFailed, Error: "bad frame: " + err.Error()})
			continue
		}
		sess.HandleFrame(r.Context(), f, emit)
	}
	// The client's side of the stream is over (EOF, or a mid-stream
	// disconnect surfaced as a body read error): release the camera ID
	// *before* draining in-flight completions, so a reconnecting camera
	// is not refused with 409 while a queued frame finishes elsewhere.
	sess.detach()
	// Drain in-flight completions, then close the stream with the
	// session's accounting.
	sess.wg.Wait()
	if err := sc.Err(); err != nil && err != io.ErrUnexpectedEOF {
		emit(Outcome{Outcome: OutcomeFailed, Error: "read: " + err.Error()})
	}
	emitMu.Lock()
	defer emitMu.Unlock()
	enc.Encode(struct {
		Summary Summary `json:"summary"`
	}{sess.Summary()})
	flusher.Flush()
}

// MetricsSnapshot is the ingest tier's aggregate accounting, exported
// under the "stream" extension of GET /v2/metrics.
type MetricsSnapshot struct {
	ActiveSessions int   `json:"active_sessions"`
	Frames         int64 `json:"frames"`
	ServedEdge     int64 `json:"served_edge"`
	ServedCloud    int64 `json:"served_cloud"`
	DedupHits      int64 `json:"dedup_hits"`
	Dropped        int64 `json:"dropped"`
	RejectedOrder  int64 `json:"rejected_order"`
	Failed         int64 `json:"failed"`
	// E2EMs summarizes frame receipt → outcome for served and cached
	// frames.
	E2EMs LatencySummaryJSON `json:"e2e_ms"`
	// UplinkMs summarizes the modeled upload cost of cloud-shipped
	// frames.
	UplinkMs LatencySummaryJSON `json:"uplink_ms"`
	// Tenants decomposes session/frame volume per tenant.
	Tenants map[string]TenantStreamStats `json:"tenants,omitempty"`
}

// LatencySummaryJSON is a milliseconds quantile summary.
type LatencySummaryJSON struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
}

func latencySummary(l *metrics.LatencyRecorder) LatencySummaryJSON {
	s := l.Summary()
	return LatencySummaryJSON{
		N:    s.N,
		Mean: s.Mean * 1000,
		P50:  s.P50 * 1000,
		P95:  s.P95 * 1000,
		P99:  s.P99 * 1000,
	}
}

// MetricsJSON snapshots the ingest metrics; its shape matches the
// serve metrics-extension hook.
func (ing *Ingest) MetricsJSON() any {
	return MetricsSnapshot{
		ActiveSessions: ing.ActiveSessions(),
		Frames:         ing.met.frames.Load(),
		ServedEdge:     ing.met.servedEdge.Load(),
		ServedCloud:    ing.met.servedCloud.Load(),
		DedupHits:      ing.met.dedupHits.Load(),
		Dropped:        ing.met.dropped.Load(),
		RejectedOrder:  ing.met.rejectedOrder.Load(),
		Failed:         ing.met.failed.Load(),
		E2EMs:          latencySummary(&ing.met.e2e),
		UplinkMs:       latencySummary(&ing.met.uplink),
		Tenants:        ing.TenantStats(),
	}
}

// WriteProm writes the ingest metrics in Prometheus text exposition
// format; its shape matches the serve metrics-extension hook.
func (ing *Ingest) WriteProm(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	fmt.Fprintf(w, "# HELP harvest_stream_active_sessions Live camera ingest sessions.\n"+
		"# TYPE harvest_stream_active_sessions gauge\nharvest_stream_active_sessions %d\n",
		ing.ActiveSessions())
	counter("harvest_stream_frames_total", "Frames received across all camera sessions.", ing.met.frames.Load())
	counter("harvest_stream_served_edge_total", "Frames served by the local edge tier.", ing.met.servedEdge.Load())
	counter("harvest_stream_served_cloud_total", "Frames offloaded to and served by the cloud tier.", ing.met.servedCloud.Load())
	counter("harvest_stream_dedup_hits_total", "Frames answered from the temporal dedup cache.", ing.met.dedupHits.Load())
	counter("harvest_stream_frames_dropped_total", "Frames dropped at admission by the drop-stale gate.", ing.met.dropped.Load())
	counter("harvest_stream_rejected_order_total", "Frames rejected for out-of-order sequence numbers.", ing.met.rejectedOrder.Load())
	counter("harvest_stream_failed_total", "Admitted frames that failed to serve.", ing.met.failed.Load())
	e2e := latencySummary(&ing.met.e2e)
	fmt.Fprintf(w, "# HELP harvest_stream_e2e_p99_ms Frame receipt to outcome P99 (served and cached frames).\n"+
		"# TYPE harvest_stream_e2e_p99_ms gauge\nharvest_stream_e2e_p99_ms %g\n", e2e.P99)
	up := latencySummary(&ing.met.uplink)
	fmt.Fprintf(w, "# HELP harvest_stream_uplink_p99_ms Modeled edge-to-cloud upload P99 for offloaded frames.\n"+
		"# TYPE harvest_stream_uplink_p99_ms gauge\nharvest_stream_uplink_p99_ms %g\n", up.P99)
	tenants := ing.TenantStats()
	if len(tenants) > 0 {
		names := make([]string, 0, len(tenants))
		for t := range tenants {
			names = append(names, t)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "# HELP harvest_stream_tenant_frames_total Frames received per tenant.\n"+
			"# TYPE harvest_stream_tenant_frames_total counter\n")
		for _, t := range names {
			fmt.Fprintf(w, "harvest_stream_tenant_frames_total%s %d\n", metrics.PromLabel("tenant", t), tenants[t].Frames)
		}
		fmt.Fprintf(w, "# HELP harvest_stream_tenant_served_total Frames served per tenant (edge or cloud).\n"+
			"# TYPE harvest_stream_tenant_served_total counter\n")
		for _, t := range names {
			fmt.Fprintf(w, "harvest_stream_tenant_served_total%s %d\n", metrics.PromLabel("tenant", t), tenants[t].Served)
		}
	}
}
