package stream

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"
)

// ClientSession is a camera's side of one live ingest stream: frames
// go up the chunked request body, outcomes come back on the response
// stream as they resolve.
type ClientSession struct {
	camera string

	pw     *io.PipeWriter
	sendMu sync.Mutex
	enc    *json.Encoder

	outcomes chan Outcome
	done     chan struct{}
	summary  Summary
	readErr  error
	resp     *http.Response
}

// DialSession opens a streaming ingest session for camera against a
// harvest-serve (or harvest-router) base URL. model, tenant and budget
// zero values defer to the server's configuration. The returned session
// is live once DialSession returns: the server has accepted the camera
// (or this call failed with its HTTP status, e.g. 409 for a duplicate
// camera ID).
func DialSession(ctx context.Context, hc *http.Client, baseURL, camera, model, tenant string, budget time.Duration) (*ClientSession, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	q := url.Values{}
	if model != "" {
		q.Set("model", model)
	}
	if tenant != "" {
		q.Set("tenant", tenant)
	}
	if budget > 0 {
		q.Set("budget_ms", fmt.Sprintf("%g", float64(budget)/float64(time.Millisecond)))
	}
	u := baseURL + "/v2/streams/" + url.PathEscape(camera)
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, pr)
	if err != nil {
		pw.Close()
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := hc.Do(req)
	if err != nil {
		pw.Close()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		resp.Body.Close()
		pw.Close()
		return nil, &SessionError{Status: resp.StatusCode, Body: string(body)}
	}
	cs := &ClientSession{
		camera:   camera,
		pw:       pw,
		enc:      json.NewEncoder(pw),
		outcomes: make(chan Outcome, 256),
		done:     make(chan struct{}),
		resp:     resp,
	}
	go cs.readLoop()
	return cs, nil
}

// SessionError is a non-200 response to a session open.
type SessionError struct {
	Status int
	Body   string
}

func (e *SessionError) Error() string {
	return fmt.Sprintf("stream: session rejected: HTTP %d: %s", e.Status, e.Body)
}

// Send ships one frame up the stream. Safe for concurrent use.
func (cs *ClientSession) Send(f Frame) error {
	cs.sendMu.Lock()
	defer cs.sendMu.Unlock()
	return cs.enc.Encode(f)
}

// Outcomes streams per-frame results in completion order. The channel
// closes after the server's final summary (or a read error).
func (cs *ClientSession) Outcomes() <-chan Outcome { return cs.outcomes }

// CloseSend signals end-of-stream; the server drains in-flight frames
// and replies with the session summary.
func (cs *ClientSession) CloseSend() error { return cs.pw.Close() }

// Wait blocks until the server closes the response stream and returns
// the session summary. Call after CloseSend.
func (cs *ClientSession) Wait() (Summary, error) {
	<-cs.done
	return cs.summary, cs.readErr
}

func (cs *ClientSession) readLoop() {
	defer close(cs.done)
	defer close(cs.outcomes)
	defer cs.resp.Body.Close()
	sc := bufio.NewScanner(cs.resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Summary *Summary `json:"summary"`
		}
		if json.Unmarshal(line, &probe) == nil && probe.Summary != nil {
			cs.summary = *probe.Summary
			continue
		}
		var o Outcome
		if err := json.Unmarshal(line, &o); err != nil {
			cs.readErr = fmt.Errorf("stream: bad outcome line: %w", err)
			return
		}
		cs.outcomes <- o
	}
	if err := sc.Err(); err != nil {
		cs.readErr = err
	}
}
