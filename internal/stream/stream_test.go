package stream_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"harvest/internal/core"
	"harvest/internal/imaging"
	"harvest/internal/serve"
	"harvest/internal/stats"
	"harvest/internal/stream"
	"harvest/internal/transfer"
)

// fakeBackend is a controllable local tier: fixed wait estimate,
// settable queue depth, and a submit counter.
type fakeBackend struct {
	wait    time.Duration
	depth   atomic.Int64
	submits atomic.Int64
	delay   time.Duration
}

func (f *fakeBackend) Submit(ctx context.Context, req *serve.Request) (*serve.Response, error) {
	f.submits.Add(1)
	if f.delay > 0 {
		select {
		case <-time.After(f.delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return &serve.Response{ID: req.ID, Model: req.Model, Items: req.Items,
		Outputs: [][]float32{{0, 1, 0}}, ComputeSeconds: 0.001}, nil
}

func (f *fakeBackend) EstimateWait(model string, items int) (time.Duration, error) {
	return f.wait, nil
}

func (f *fakeBackend) QueueDepth(model string) (int64, error) {
	return f.depth.Load(), nil
}

// frameBytes renders one PPM frame of the given kind and seed.
func frameBytes(t *testing.T, kind imaging.SyntheticKind, seed uint64, size int) []byte {
	t.Helper()
	im := imaging.Synthesize(size, size, kind, stats.NewRNG(seed))
	data, err := imaging.EncodeBytes(im, imaging.FormatPPM)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// nearIdentical perturbs ~10% of pixels by ±2: same scene to dHash.
func nearIdentical(t *testing.T, src []byte, seed uint64) []byte {
	t.Helper()
	im, err := imaging.DecodeBytes(src, imaging.FormatPPM)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(seed)
	for i := range im.Pix {
		if rng.Intn(10) == 0 {
			v := int(im.Pix[i]) + rng.Intn(5) - 2
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			im.Pix[i] = uint8(v)
		}
	}
	data, err := imaging.EncodeBytes(im, imaging.FormatPPM)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func newIngest(t *testing.T, cfg stream.Config) *stream.Ingest {
	t.Helper()
	if cfg.Model == "" {
		cfg.Model = "ViT_Tiny"
	}
	ing, err := stream.NewIngest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ing
}

// collect returns an emit func feeding a buffered channel.
func collect(cap int) (func(stream.Outcome), chan stream.Outcome) {
	ch := make(chan stream.Outcome, cap)
	return func(o stream.Outcome) { ch <- o }, ch
}

func nextOutcome(t *testing.T, ch chan stream.Outcome) stream.Outcome {
	t.Helper()
	select {
	case o := <-ch:
		return o
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for outcome")
		return stream.Outcome{}
	}
}

func TestOutOfOrderFramesRejected(t *testing.T) {
	t.Parallel()
	fb := &fakeBackend{}
	ing := newIngest(t, stream.Config{Model: "ViT_Tiny", Local: fb, Budget: time.Second})
	sess, err := ing.Open("cam-a", "", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	emit, ch := collect(16)
	img := frameBytes(t, imaging.KindLeaf, 1, 48)

	sess.HandleFrame(context.Background(), stream.Frame{Seq: 1, Image: img, Format: "ppm"}, emit)
	if o := nextOutcome(t, ch); o.Outcome != stream.OutcomeServed {
		t.Fatalf("seq 1: got %q, want served", o.Outcome)
	}
	sess.HandleFrame(context.Background(), stream.Frame{Seq: 3, Image: img, Format: "ppm"}, emit)
	if o := nextOutcome(t, ch); o.Outcome != stream.OutcomeServed && o.Outcome != stream.OutcomeCached {
		t.Fatalf("seq 3: got %q, want served or cached", o.Outcome)
	}
	// Regressed and duplicate sequence numbers must be rejected, not
	// reordered or served.
	for _, seq := range []int64{2, 3, 1} {
		sess.HandleFrame(context.Background(), stream.Frame{Seq: seq, Image: img, Format: "ppm"}, emit)
		o := nextOutcome(t, ch)
		if o.Outcome != stream.OutcomeRejectedOrder {
			t.Fatalf("seq %d after 3: got %q, want rejected_order", seq, o.Outcome)
		}
		if o.Seq != seq {
			t.Fatalf("rejection for seq %d reported seq %d", seq, o.Seq)
		}
	}
	if got := sess.Summary().RejectedOrder; got != 3 {
		t.Fatalf("summary rejected_order = %d, want 3", got)
	}
	if got := fb.submits.Load(); got > 2 {
		t.Fatalf("rejected frames reached the backend: %d submits", got)
	}
}

// TestDropStaleNeverReachesBatcher drives a real (saturated-by-budget)
// serving tier: frames whose budget cannot cover even the batching
// window must be dropped at admission and never submitted — the server
// must count zero requests for them, i.e. a dropped frame never holds
// a batch slot.
func TestDropStaleNeverReachesBatcher(t *testing.T) {
	t.Parallel()
	srv, err := core.NewDeployment(core.DeploymentConfig{
		Platform:   "Jetson",
		Models:     []string{"ViT_Tiny"},
		QueueDelay: 5 * time.Millisecond,
		Preproc:    "cpu",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ing := newIngest(t, stream.Config{Model: "ViT_Tiny", Local: srv})
	// Budget below the 5ms batching window: the wait estimate alone
	// blows the deadline for every frame.
	sess, err := ing.Open("cam-tight", "", "", time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	emit, ch := collect(32)
	img := frameBytes(t, imaging.KindRows, 2, 48)
	const n = 8
	for i := 1; i <= n; i++ {
		sess.HandleFrame(context.Background(), stream.Frame{Seq: int64(i), Image: img, Format: "ppm"}, emit)
		o := nextOutcome(t, ch)
		if o.Outcome != stream.OutcomeDropped {
			t.Fatalf("frame %d: got %q, want frame_dropped", i, o.Outcome)
		}
	}
	sess.Close()
	m, err := srv.MetricsFor("ViT_Tiny")
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests != 0 || m.Items != 0 {
		t.Fatalf("dropped frames reached the batcher: requests=%d items=%d", m.Requests, m.Items)
	}

	// Control: the same frame with a generous budget is admitted and
	// served — the gate sheds staleness, not traffic.
	sess2, err := ing.Open("cam-roomy", "", "", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sess2.HandleFrame(context.Background(), stream.Frame{Seq: 1, Image: img, Format: "ppm"}, emit)
	if o := nextOutcome(t, ch); o.Outcome != stream.OutcomeServed || o.Where != stream.WhereEdge {
		t.Fatalf("roomy frame: got %q/%q, want served/edge", o.Outcome, o.Where)
	}
	sess2.Close()
	m, err = srv.MetricsFor("ViT_Tiny")
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests != 1 {
		t.Fatalf("served frame count: requests=%d, want 1", m.Requests)
	}
}

func TestDedupHitOnNearIdenticalMissOnDistinct(t *testing.T) {
	t.Parallel()
	fb := &fakeBackend{}
	ing := newIngest(t, stream.Config{
		Model: "ViT_Tiny", Local: fb,
		Budget: time.Second, DedupTTL: time.Minute,
	})
	sess, err := ing.Open("cam-d", "", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	emit, ch := collect(16)
	base := frameBytes(t, imaging.KindLeaf, 3, 64)

	sess.HandleFrame(context.Background(), stream.Frame{Seq: 1, Image: base, Format: "ppm"}, emit)
	first := nextOutcome(t, ch)
	if first.Outcome != stream.OutcomeServed {
		t.Fatalf("first frame: got %q, want served", first.Outcome)
	}

	// Near-identical frame: answered from cache, same classification,
	// no backend submit.
	before := fb.submits.Load()
	sess.HandleFrame(context.Background(), stream.Frame{Seq: 2, Image: nearIdentical(t, base, 99), Format: "ppm"}, emit)
	hit := nextOutcome(t, ch)
	if hit.Outcome != stream.OutcomeCached {
		t.Fatalf("near-identical frame: got %q, want cached", hit.Outcome)
	}
	if hit.DistanceBits > stream.DefaultDedupMaxHamming {
		t.Fatalf("cached hit at distance %d > max %d", hit.DistanceBits, stream.DefaultDedupMaxHamming)
	}
	if len(hit.Classification) != 1 || len(first.Classification) != 1 ||
		hit.Classification[0] != first.Classification[0] {
		t.Fatalf("cached classification %v != served %v", hit.Classification, first.Classification)
	}
	if fb.submits.Load() != before {
		t.Fatal("cache hit still submitted to the backend")
	}

	// Distinct content: a miss, served fresh.
	sess.HandleFrame(context.Background(), stream.Frame{Seq: 3,
		Image: frameBytes(t, imaging.KindFruit, 77, 64), Format: "ppm"}, emit)
	if o := nextOutcome(t, ch); o.Outcome != stream.OutcomeServed {
		t.Fatalf("distinct frame: got %q, want served", o.Outcome)
	}
	if fb.submits.Load() != before+1 {
		t.Fatalf("distinct frame submits = %d, want %d", fb.submits.Load(), before+1)
	}
	s := sess.Summary()
	if s.DedupHits != 1 || s.ServedEdge != 2 {
		t.Fatalf("summary hits=%d served_edge=%d, want 1/2", s.DedupHits, s.ServedEdge)
	}
}

// TestOffloadFlipsUnderQueuePressure checks the runtime decision: low
// local queue depth serves at the edge; past the threshold, frames
// ship to the cloud tier over the modeled link — and no admitted frame
// fails in either regime.
func TestOffloadFlipsUnderQueuePressure(t *testing.T) {
	t.Parallel()
	var cloudHits atomic.Int64
	cloud := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cloudHits.Add(1)
		var body serve.InferRequestJSON
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		json.NewEncoder(w).Encode(serve.InferResponseJSON{
			ID: body.ID, Model: "ViT_Tiny", Items: 1, Classification: []int{2},
		})
	}))
	defer cloud.Close()

	fb := &fakeBackend{}
	pol := &stream.OffloadPolicy{
		Cloud:          serve.NewClient(cloud.URL),
		Link:           transfer.WiFi(),
		ChunkBytes:     64 << 10,
		QueueThreshold: 3,
		LinkTimeScale:  -1, // model the link, never sleep it in tests
	}
	ing := newIngest(t, stream.Config{
		Model: "ViT_Tiny", Local: fb, Budget: time.Second,
		DedupWindow: -1, // isolate the offload path from dedup
		Offload:     pol,
	})
	sess, err := ing.Open("cam-o", "", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	emit, ch := collect(64)

	frame := func(seq int64, seed uint64) stream.Frame {
		return stream.Frame{Seq: seq, Image: frameBytes(t, imaging.KindSoil, seed, 48), Format: "ppm"}
	}

	// Unloaded edge: local serving.
	for seq := int64(1); seq <= 3; seq++ {
		sess.HandleFrame(context.Background(), frame(seq, uint64(seq)), emit)
		o := nextOutcome(t, ch)
		if o.Outcome != stream.OutcomeServed || o.Where != stream.WhereEdge {
			t.Fatalf("unloaded frame %d: got %q/%q, want served/edge", seq, o.Outcome, o.Where)
		}
	}
	if cloudHits.Load() != 0 {
		t.Fatal("cloud hit while edge was unloaded")
	}

	// Queue pressure past the threshold: the decision flips to cloud.
	fb.depth.Store(5)
	for seq := int64(4); seq <= 7; seq++ {
		sess.HandleFrame(context.Background(), frame(seq, uint64(seq*13)), emit)
		o := nextOutcome(t, ch)
		if o.Outcome != stream.OutcomeServed || o.Where != stream.WhereCloud {
			t.Fatalf("pressured frame %d: got %q/%q (err %q), want served/cloud", seq, o.Outcome, o.Where, o.Error)
		}
		if o.UploadMs <= 0 {
			t.Fatalf("cloud frame %d has no modeled upload cost", seq)
		}
	}
	if cloudHits.Load() != 4 {
		t.Fatalf("cloud hits = %d, want 4", cloudHits.Load())
	}

	// Pressure relieved: back to the edge.
	fb.depth.Store(0)
	sess.HandleFrame(context.Background(), frame(8, 999), emit)
	if o := nextOutcome(t, ch); o.Outcome != stream.OutcomeServed || o.Where != stream.WhereEdge {
		t.Fatalf("relieved frame: got %q/%q, want served/edge", o.Outcome, o.Where)
	}

	s := sess.Summary()
	if s.Failed != 0 {
		t.Fatalf("admitted frames failed: %d", s.Failed)
	}
	if s.ServedEdge != 4 || s.ServedCloud != 4 {
		t.Fatalf("served edge/cloud = %d/%d, want 4/4", s.ServedEdge, s.ServedCloud)
	}
}

// TestStreamHTTPEndToEnd exercises the wire path: DialSession against
// Ingest.Handler, NDJSON frames up, outcomes and a summary down, one
// session per camera enforced with 409.
func TestStreamHTTPEndToEnd(t *testing.T) {
	t.Parallel()
	fb := &fakeBackend{}
	ing := newIngest(t, stream.Config{Model: "ViT_Tiny", Local: fb, Budget: time.Second})
	ts := httptest.NewServer(ing.Handler())
	defer ts.Close()

	sess, err := stream.DialSession(context.Background(), ts.Client(), ts.URL, "cam-1", "", "", 0)
	if err != nil {
		t.Fatal(err)
	}

	// A second session for the same camera must be refused while the
	// first is live.
	if _, err := stream.DialSession(context.Background(), ts.Client(), ts.URL, "cam-1", "", "", 0); err == nil {
		t.Fatal("duplicate camera session accepted")
	} else {
		var se *stream.SessionError
		if !asSessionError(err, &se) || se.Status != http.StatusConflict {
			t.Fatalf("duplicate session error = %v, want HTTP 409", err)
		}
	}

	base := frameBytes(t, imaging.KindLeaf, 5, 48)
	frames := [][]byte{base, nearIdentical(t, base, 8), frameBytes(t, imaging.KindRows, 6, 48)}
	var outs []stream.Outcome
	var mu sync.Mutex
	done := make(chan struct{})
	go func() {
		defer close(done)
		for o := range sess.Outcomes() {
			mu.Lock()
			outs = append(outs, o)
			mu.Unlock()
		}
	}()
	for i, img := range frames {
		if err := sess.Send(stream.Frame{Seq: int64(i + 1), Image: img, Format: "ppm"}); err != nil {
			t.Fatal(err)
		}
		// Pace so the dedup insert from frame 1 lands before frame 2.
		time.Sleep(20 * time.Millisecond)
	}
	if err := sess.CloseSend(); err != nil {
		t.Fatal(err)
	}
	summary, err := sess.Wait()
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if summary.Frames != 3 {
		t.Fatalf("summary frames = %d, want 3", summary.Frames)
	}
	if summary.ServedEdge+summary.DedupHits != 3 || summary.Failed != 0 {
		t.Fatalf("summary served=%d hits=%d failed=%d", summary.ServedEdge, summary.DedupHits, summary.Failed)
	}
	if summary.DedupHits < 1 {
		t.Fatalf("near-identical frame missed the dedup cache: %+v", summary)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(outs) != 3 {
		t.Fatalf("got %d outcome lines, want 3", len(outs))
	}

	// The camera freed on close: a new session may open.
	sess2, err := stream.DialSession(context.Background(), ts.Client(), ts.URL, "cam-1", "", "", 0)
	if err != nil {
		t.Fatalf("camera not released after close: %v", err)
	}
	sess2.CloseSend()
	sess2.Wait()
}

// asSessionError unwraps err into a *SessionError.
func asSessionError(err error, target **stream.SessionError) bool {
	se, ok := err.(*stream.SessionError)
	if ok {
		*target = se
	}
	return ok
}

// stuckBackend's Submit ignores context cancellation and completes only
// when released — a frame occupying the serving tier long after its
// camera has gone away.
type stuckBackend struct {
	submits atomic.Int64
	release chan struct{}
}

func (b *stuckBackend) Submit(ctx context.Context, req *serve.Request) (*serve.Response, error) {
	b.submits.Add(1)
	<-b.release
	return &serve.Response{ID: req.ID, Model: req.Model, Items: req.Items}, nil
}
func (b *stuckBackend) EstimateWait(model string, items int) (time.Duration, error) { return 0, nil }
func (b *stuckBackend) QueueDepth(model string) (int64, error)                      { return 0, nil }

// TestStreamReconnectAfterDisconnect is the session-leak regression
// test: a camera whose connection dies mid-stream — with a frame still
// in flight on the serving tier — must be able to reconnect immediately
// instead of getting 409 ErrSessionActive against its own dead session.
func TestStreamReconnectAfterDisconnect(t *testing.T) {
	t.Parallel()
	bk := &stuckBackend{release: make(chan struct{})}
	ing := newIngest(t, stream.Config{Model: "ViT_Tiny", Local: bk, Budget: time.Minute})
	ts := httptest.NewServer(ing.Handler())
	defer ts.Close()
	// Registered after ts.Close so it runs first: ts.Close waits for the
	// stuck handler, which only exits once the backend is released.
	defer close(bk.release)

	ctx, cancel := context.WithCancel(context.Background())
	sess, err := stream.DialSession(ctx, ts.Client(), ts.URL, "cam-r", "", "farm-a", 0)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for range sess.Outcomes() {
		}
	}()
	if err := sess.Send(stream.Frame{Seq: 1, Image: frameBytes(t, imaging.KindLeaf, 3, 48), Format: "ppm"}); err != nil {
		t.Fatal(err)
	}
	// Wait until the frame is parked on the serving tier.
	deadline := time.Now().Add(5 * time.Second)
	for bk.submits.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("frame never reached the backend")
		}
		time.Sleep(time.Millisecond)
	}
	// The camera disconnects mid-stream: the server's body read errors
	// while the submitted frame is still in flight.
	cancel()

	// Reconnecting must succeed promptly — the dying session detaches the
	// camera ID on disconnect, before waiting out its in-flight frame.
	var sess2 *stream.ClientSession
	deadline = time.Now().Add(5 * time.Second)
	for {
		sess2, err = stream.DialSession(context.Background(), ts.Client(), ts.URL, "cam-r", "", "farm-a", 0)
		if err == nil {
			break
		}
		var se *stream.SessionError
		if !asSessionError(err, &se) || se.Status != http.StatusConflict {
			t.Fatalf("reconnect failed with non-409: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("camera still 409-conflicted after disconnect: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The old frame must still be stuck: reconnection worked *while* the
	// previous session had work in flight, not after it drained.
	if bk.submits.Load() != 1 {
		t.Fatalf("backend submits = %d, want the one stuck frame", bk.submits.Load())
	}
	if err := sess2.CloseSend(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess2.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamTenantAccounting: the tenant tag on a session shows up in
// the session summary and the ingest tier's per-tenant stats.
func TestStreamTenantAccounting(t *testing.T) {
	t.Parallel()
	fb := &fakeBackend{}
	ing := newIngest(t, stream.Config{Model: "ViT_Tiny", Local: fb, Budget: time.Second})
	ts := httptest.NewServer(ing.Handler())
	defer ts.Close()

	sess, err := stream.DialSession(context.Background(), ts.Client(), ts.URL, "cam-t", "", "farm-b", 0)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for range sess.Outcomes() {
		}
	}()
	if err := sess.Send(stream.Frame{Seq: 1, Image: frameBytes(t, imaging.KindRows, 9, 48), Format: "ppm"}); err != nil {
		t.Fatal(err)
	}
	if err := sess.CloseSend(); err != nil {
		t.Fatal(err)
	}
	summary, err := sess.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if summary.Tenant != "farm-b" {
		t.Errorf("summary tenant %q, want farm-b", summary.Tenant)
	}
	st := ing.TenantStats()
	if st["farm-b"].Sessions != 1 || st["farm-b"].Frames != 1 || st["farm-b"].Served != 1 {
		t.Errorf("tenant stream stats %+v", st["farm-b"])
	}
}
