// Package stream implements the continuum's streaming-camera workload
// shape: long-lived per-camera ingest sessions over chunked HTTP, the
// first path beyond single-shot classification. A session enforces
// per-stream frame ordering, drops frames whose deadline can no longer
// be met *at admission* (paper §2.2: a 60 FPS camera's stale frame is
// worthless — dropping beats queueing), answers near-identical
// consecutive frames from a perceptual-hash dedup cache, and — via
// OffloadPolicy — ships frames from a pressured edge replica to cloud
// replicas over a transfer.Link-modeled uplink.
package stream

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"harvest/internal/imaging"
	"harvest/internal/metrics"
	"harvest/internal/serve"
	"harvest/internal/trace"
)

// Frame outcomes, one per ingested frame, reported on the session's
// response stream and counted in the ingest metrics.
const (
	// OutcomeServed: the frame ran inference (edge or cloud).
	OutcomeServed = "served"
	// OutcomeCached: answered from the temporal dedup cache.
	OutcomeCached = "cached"
	// OutcomeDropped: the drop-stale gate shed the frame at admission —
	// its deadline could not be met, so it never occupied a queue or
	// batch slot.
	OutcomeDropped = "frame_dropped"
	// OutcomeRejectedOrder: the frame arrived at or behind the stream's
	// high-water sequence number.
	OutcomeRejectedOrder = "rejected_order"
	// OutcomeFailed: an admitted frame errored (decode failure or a
	// serving-tier error).
	OutcomeFailed = "failed"
)

// Where a served frame ran.
const (
	WhereEdge  = "edge"
	WhereCloud = "cloud"
)

// ErrSessionActive reports a second concurrent session for a camera
// that already has one (HTTP 409 on the wire).
var ErrSessionActive = errors.New("stream: camera session already active")

// Defaults for Config zero values.
const (
	DefaultDedupWindow     = 8
	DefaultDedupMaxHamming = 6
	DefaultDedupTTL        = 250 * time.Millisecond
	DefaultMaxFrameBytes   = 32 << 20
)

// Backend is the local (edge) inference tier a session feeds;
// *serve.Server satisfies it. EstimateWait and QueueDepth power the
// drop-stale gate and the offload pressure signal.
type Backend interface {
	Submit(ctx context.Context, req *serve.Request) (*serve.Response, error)
	EstimateWait(model string, items int) (time.Duration, error)
	QueueDepth(model string) (int64, error)
}

// Config configures an Ingest.
type Config struct {
	// Model is the default model frames run against (a session may
	// override per-stream via the model query parameter).
	Model string
	// Local is the edge serving tier.
	Local Backend
	// Budget is each frame's latency budget counted from ingest
	// receipt (default serve.DefaultRealtimeBudget, the 60 FPS SLO).
	Budget time.Duration
	// DedupWindow is how many recent served frames a session remembers
	// for perceptual dedup (default 8; negative disables dedup).
	DedupWindow int
	// DedupMaxHamming is the largest dHash Hamming distance still
	// treated as a near-identical frame (default 6 of 64 bits).
	DedupMaxHamming int
	// DedupTTL expires cache entries: temporal redundancy is only
	// redundancy while the scene is current (default 250ms).
	DedupTTL time.Duration
	// Offload, when non-nil, enables runtime edge→cloud offload.
	Offload *OffloadPolicy
	// Trace receives per-frame and uplink spans (nil disables).
	Trace *trace.Recorder
	// MaxFrameBytes caps one encoded frame on the wire (default 32 MiB,
	// a 4K raw frame with headroom).
	MaxFrameBytes int
}

func (c Config) budget() time.Duration {
	if c.Budget > 0 {
		return c.Budget
	}
	return serve.DefaultRealtimeBudget
}

func (c Config) dedupWindow() int {
	if c.DedupWindow == 0 {
		return DefaultDedupWindow
	}
	if c.DedupWindow < 0 {
		return 0
	}
	return c.DedupWindow
}

func (c Config) dedupMaxHamming() int {
	if c.DedupMaxHamming <= 0 {
		return DefaultDedupMaxHamming
	}
	return c.DedupMaxHamming
}

func (c Config) dedupTTL() time.Duration {
	if c.DedupTTL <= 0 {
		return DefaultDedupTTL
	}
	return c.DedupTTL
}

func (c Config) maxFrameBytes() int {
	if c.MaxFrameBytes <= 0 {
		return DefaultMaxFrameBytes
	}
	return c.MaxFrameBytes
}

// ingestMetrics aggregates frame outcomes across all sessions.
type ingestMetrics struct {
	frames        metrics.Counter
	servedEdge    metrics.Counter
	servedCloud   metrics.Counter
	dedupHits     metrics.Counter
	dropped       metrics.Counter
	rejectedOrder metrics.Counter
	failed        metrics.Counter
	// e2e is frame receipt → outcome latency for served/cached frames.
	e2e metrics.LatencyRecorder
	// uplink is the modeled upload cost of cloud-shipped frames.
	uplink metrics.LatencyRecorder
}

// TenantStreamStats is one tenant's share of the ingest tier: how many
// sessions it has opened, and its frame/served volume.
type TenantStreamStats struct {
	Sessions int64 `json:"sessions"`
	Frames   int64 `json:"frames"`
	Served   int64 `json:"served"`
}

// Ingest owns the per-camera sessions and their shared configuration.
type Ingest struct {
	cfg Config

	mu       sync.Mutex
	sessions map[string]*Session
	met      ingestMetrics

	tmu     sync.Mutex
	tenants map[string]TenantStreamStats
}

// tenantAdd folds deltas into one tenant's stream accounting.
func (ing *Ingest) tenantAdd(tenant string, sessions, frames, served int64) {
	if tenant == "" {
		tenant = serve.DefaultTenant
	}
	ing.tmu.Lock()
	st := ing.tenants[tenant]
	st.Sessions += sessions
	st.Frames += frames
	st.Served += served
	ing.tenants[tenant] = st
	ing.tmu.Unlock()
}

// TenantStats snapshots per-tenant stream accounting (nil when no
// tenant has streamed).
func (ing *Ingest) TenantStats() map[string]TenantStreamStats {
	ing.tmu.Lock()
	defer ing.tmu.Unlock()
	if len(ing.tenants) == 0 {
		return nil
	}
	out := make(map[string]TenantStreamStats, len(ing.tenants))
	for k, v := range ing.tenants {
		out[k] = v
	}
	return out
}

// NewIngest creates a streaming ingest tier over the local backend.
func NewIngest(cfg Config) (*Ingest, error) {
	if cfg.Local == nil {
		return nil, errors.New("stream: Config.Local backend required")
	}
	if cfg.Model == "" {
		return nil, errors.New("stream: Config.Model required")
	}
	if _, err := cfg.Local.EstimateWait(cfg.Model, 1); err != nil {
		return nil, fmt.Errorf("stream: local backend does not serve %q: %w", cfg.Model, err)
	}
	return &Ingest{cfg: cfg, sessions: make(map[string]*Session), tenants: make(map[string]TenantStreamStats)}, nil
}

// Open starts the camera's session, enforcing one live session per
// camera ID. The caller must Close the session. tenant is canonicalized
// through serve.ParseTenant ("" maps to the default tenant).
func (ing *Ingest) Open(camera, model, tenant string, budget time.Duration) (*Session, error) {
	if model == "" {
		model = ing.cfg.Model
	}
	if _, err := ing.cfg.Local.EstimateWait(model, 1); err != nil {
		return nil, err
	}
	tenant, err := serve.ParseTenant(tenant)
	if err != nil {
		return nil, err
	}
	if budget <= 0 {
		budget = ing.cfg.budget()
	}
	ing.mu.Lock()
	defer ing.mu.Unlock()
	if _, busy := ing.sessions[camera]; busy {
		return nil, fmt.Errorf("%w: %q", ErrSessionActive, camera)
	}
	s := &Session{
		Camera: camera,
		Model:  model,
		Tenant: tenant,
		Budget: budget,
		ing:    ing,
		cache:  newDedupCache(ing.cfg.dedupWindow()),
	}
	ing.sessions[camera] = s
	ing.tenantAdd(tenant, 1, 0, 0)
	return s, nil
}

// ActiveSessions returns the number of live camera sessions.
func (ing *Ingest) ActiveSessions() int {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return len(ing.sessions)
}

// Session is one camera's live ingest stream.
type Session struct {
	Camera string
	Model  string
	Tenant string
	Budget time.Duration

	ing *Ingest

	// lastSeq is the stream's high-water sequence number; only the
	// session's reader goroutine moves it, so ordering is enforced in
	// arrival order even though completions are asynchronous.
	lastSeq int64

	mu    sync.Mutex
	cache *dedupCache

	// wg tracks in-flight frame completions.
	wg sync.WaitGroup

	// Per-session outcome counters (atomics: completion goroutines).
	frames        atomic.Int64
	servedEdge    atomic.Int64
	servedCloud   atomic.Int64
	dedupHits     atomic.Int64
	dropped       atomic.Int64
	rejectedOrder atomic.Int64
	failed        atomic.Int64
}

// Frame is one camera frame: a strictly-increasing sequence number and
// an encoded image payload.
type Frame struct {
	Seq    int64  `json:"seq"`
	Image  []byte `json:"image_b64"`
	Format string `json:"format,omitempty"`
}

// Outcome is the per-frame result line.
type Outcome struct {
	Seq     int64  `json:"seq"`
	Outcome string `json:"outcome"`
	// Where reports the serving tier of a served frame: "edge" or
	// "cloud". For a dropped frame it names the tier whose estimate
	// blew the deadline.
	Where string `json:"where,omitempty"`
	// DistanceBits is the dHash Hamming distance to the cache entry
	// that answered a cached frame.
	DistanceBits int `json:"distance_bits,omitempty"`
	// Classification is the argmax class per item, when the serving
	// tier computed outputs.
	Classification []int `json:"classification,omitempty"`
	// E2EMs is frame receipt → outcome.
	E2EMs float64 `json:"e2e_ms,omitempty"`
	// UploadMs is the link-modeled upload cost of a cloud-served frame.
	UploadMs float64 `json:"upload_ms,omitempty"`
	Error    string  `json:"error,omitempty"`
}

// Summary is a session's final accounting, emitted as the last line of
// the response stream.
type Summary struct {
	Camera        string `json:"camera"`
	Tenant        string `json:"tenant,omitempty"`
	Frames        int64  `json:"frames"`
	ServedEdge    int64  `json:"served_edge"`
	ServedCloud   int64  `json:"served_cloud"`
	DedupHits     int64  `json:"dedup_hits"`
	Dropped       int64  `json:"dropped"`
	RejectedOrder int64  `json:"rejected_order"`
	Failed        int64  `json:"failed"`
}

// Summary snapshots the session's counters.
func (s *Session) Summary() Summary {
	return Summary{
		Camera:        s.Camera,
		Tenant:        s.Tenant,
		Frames:        s.frames.Load(),
		ServedEdge:    s.servedEdge.Load(),
		ServedCloud:   s.servedCloud.Load(),
		DedupHits:     s.dedupHits.Load(),
		Dropped:       s.dropped.Load(),
		RejectedOrder: s.rejectedOrder.Load(),
		Failed:        s.failed.Load(),
	}
}

// detach releases the camera ID so a new session can open immediately,
// without waiting for this session's in-flight frames. The ingest HTTP
// handler detaches as soon as the client's request body ends (EOF or a
// mid-stream disconnect): a camera that reconnects must not 409 against
// its own dying session just because an admitted frame is still queued
// behind a saturated serving tier. Idempotent, and a no-op if a newer
// session already took the camera.
func (s *Session) detach() {
	s.ing.mu.Lock()
	if s.ing.sessions[s.Camera] == s {
		delete(s.ing.sessions, s.Camera)
	}
	s.ing.mu.Unlock()
}

// Close releases the camera and waits for in-flight frame completions.
func (s *Session) Close() {
	s.detach()
	s.wg.Wait()
}

// span records a frame-lifecycle span on the session's camera track.
func (s *Session) span(name string, start time.Time, d time.Duration, args map[string]any) {
	rec := s.ing.cfg.Trace
	if rec == nil {
		return
	}
	if args == nil {
		args = map[string]any{}
	}
	args["tenant"] = s.Tenant
	rec.Add(trace.Span{
		Name:     name,
		Track:    "cam:" + s.Camera,
		Start:    float64(start.UnixNano()) / float64(time.Second),
		Duration: d.Seconds(),
		Args:     args,
	})
}

// HandleFrame runs one frame through the session: ordering check,
// decode + perceptual hash, dedup lookup, drop-stale admission gate,
// then asynchronous inference (edge or cloud per the offload policy).
// The synchronous part returns as soon as the frame is admitted (or
// resolved), so a saturated serving tier never stalls the camera's
// read loop; emit is called exactly once per frame, possibly from
// another goroutine, when the outcome is known.
func (s *Session) HandleFrame(ctx context.Context, f Frame, emit func(Outcome)) {
	recv := time.Now()
	s.frames.Add(1)
	s.ing.met.frames.Inc()
	s.ing.tenantAdd(s.Tenant, 0, 1, 0)

	// Per-stream ordering: frames must arrive with strictly increasing
	// sequence numbers. A regressed or duplicated seq is rejected, not
	// reordered — the camera is the clock, and serving an older frame
	// after a newer one inverts time for the consumer.
	if f.Seq <= s.lastSeq {
		s.rejectedOrder.Add(1)
		s.ing.met.rejectedOrder.Inc()
		emit(Outcome{Seq: f.Seq, Outcome: OutcomeRejectedOrder,
			Error: fmt.Sprintf("seq %d not after %d", f.Seq, s.lastSeq)})
		return
	}
	s.lastSeq = f.Seq

	format := imaging.FormatJPEG
	if f.Format != "" {
		var err error
		if format, err = imaging.ParseFormat(f.Format); err != nil {
			s.failed.Add(1)
			s.ing.met.failed.Inc()
			emit(Outcome{Seq: f.Seq, Outcome: OutcomeFailed, Error: err.Error()})
			return
		}
	}
	im, err := imaging.DecodeBytes(f.Image, format)
	if err != nil {
		s.failed.Add(1)
		s.ing.met.failed.Inc()
		emit(Outcome{Seq: f.Seq, Outcome: OutcomeFailed, Error: "decode: " + err.Error()})
		return
	}

	// Temporal dedup: a frame perceptually identical to a recently
	// served one is answered from cache — no queue slot, no compute.
	hash := imaging.DHash(im)
	if s.ing.cfg.dedupWindow() > 0 {
		s.mu.Lock()
		entry, dist, hit := s.cache.lookup(hash, recv, s.ing.cfg.dedupTTL(), s.ing.cfg.dedupMaxHamming())
		s.mu.Unlock()
		if hit {
			s.dedupHits.Add(1)
			s.ing.met.dedupHits.Inc()
			e2e := time.Since(recv)
			s.ing.met.e2e.Observe(e2e.Seconds())
			s.span("frame", recv, e2e, map[string]any{"seq": f.Seq, "outcome": OutcomeCached, "distance": dist})
			emit(Outcome{Seq: f.Seq, Outcome: OutcomeCached, Where: entry.where,
				DistanceBits: dist, Classification: entry.classification,
				E2EMs: float64(e2e) / float64(time.Millisecond)})
			return
		}
	}

	deadline := recv.Add(s.Budget)

	// Offload decision: serve locally until queue/energy/deadline
	// pressure says otherwise.
	estLocal, _ := s.ing.cfg.Local.EstimateWait(s.Model, 1)
	var dec Decision
	if p := s.ing.cfg.Offload; p != nil {
		dec = p.Decide(s.ing.cfg.Local, s.Model, len(f.Image), estLocal, deadline.Sub(recv))
	}

	// Drop-stale admission gate: estimate the chosen tier's completion
	// time; a frame that cannot meet its deadline is dropped *now*,
	// with a counted outcome — it never occupies a queue or batch slot.
	estWait := estLocal
	where := WhereEdge
	if dec.Cloud {
		where = WhereCloud
		estWait = dec.EstWait
	}
	if recv.Add(estWait).After(deadline) {
		s.dropped.Add(1)
		s.ing.met.dropped.Inc()
		s.span("frame", recv, time.Since(recv), map[string]any{
			"seq": f.Seq, "outcome": OutcomeDropped, "where": where,
			"est_wait_ms": float64(estWait) / float64(time.Millisecond)})
		emit(Outcome{Seq: f.Seq, Outcome: OutcomeDropped, Where: where,
			Error: fmt.Sprintf("estimated wait %.1fms exceeds budget %.1fms",
				float64(estWait)/float64(time.Millisecond), float64(s.Budget)/float64(time.Millisecond))})
		return
	}

	// Admitted: complete asynchronously so the read loop keeps
	// draining the camera while this frame is in flight.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		if dec.Cloud {
			s.serveCloud(ctx, f, format, hash, recv, deadline, emit)
			return
		}
		s.serveEdge(ctx, f, format, hash, recv, deadline, emit)
	}()
}

func (s *Session) frameID(seq int64) string {
	return fmt.Sprintf("%s-%d", s.Camera, seq)
}

// serveEdge submits the frame to the local tier.
func (s *Session) serveEdge(ctx context.Context, f Frame, format imaging.Format, hash uint64, recv, deadline time.Time, emit func(Outcome)) {
	resp, err := s.ing.cfg.Local.Submit(ctx, &serve.Request{
		ID:          s.frameID(f.Seq),
		Model:       s.Model,
		Tenant:      s.Tenant,
		Items:       1,
		Images:      [][]byte{f.Image},
		ImageFormat: format,
		Class:       serve.ClassRealtime,
		Deadline:    deadline,
	})
	if err != nil {
		s.fail(f.Seq, recv, WhereEdge, err, emit)
		return
	}
	var class []int
	if len(resp.Outputs) == 1 {
		class = []int{argmax(resp.Outputs[0])}
	}
	if p := s.ing.cfg.Offload; p != nil {
		p.noteEdgeCompute(resp.ComputeSeconds)
	}
	s.served(f.Seq, recv, WhereEdge, hash, class, 0, emit)
}

// serveCloud ships the frame over the modeled uplink to the cloud tier.
func (s *Session) serveCloud(ctx context.Context, f Frame, format imaging.Format, hash uint64, recv, deadline time.Time, emit func(Outcome)) {
	p := s.ing.cfg.Offload
	out, uploadSec, err := p.Ship(ctx, s.frameID(f.Seq), s.Model, s.Tenant, f, format, deadline)
	if uploadSec > 0 {
		s.ing.met.uplink.Observe(uploadSec)
		s.span("uplink", recv, time.Duration(uploadSec*float64(time.Second)), map[string]any{
			"seq": f.Seq, "link": p.Link.Name, "bytes": len(f.Image),
			"messages": p.messages(len(f.Image))})
	}
	if err != nil {
		s.fail(f.Seq, recv, WhereCloud, err, emit)
		return
	}
	s.served(f.Seq, recv, WhereCloud, hash, out.Classification, uploadSec, emit)
}

// served records a successful frame and populates the dedup cache.
func (s *Session) served(seq int64, recv time.Time, where string, hash uint64, class []int, uploadSec float64, emit func(Outcome)) {
	if where == WhereCloud {
		s.servedCloud.Add(1)
		s.ing.met.servedCloud.Inc()
	} else {
		s.servedEdge.Add(1)
		s.ing.met.servedEdge.Inc()
	}
	s.ing.tenantAdd(s.Tenant, 0, 0, 1)
	if s.ing.cfg.dedupWindow() > 0 {
		s.mu.Lock()
		s.cache.insert(hash, class, where, time.Now())
		s.mu.Unlock()
	}
	e2e := time.Since(recv)
	s.ing.met.e2e.Observe(e2e.Seconds())
	s.span("frame", recv, e2e, map[string]any{"seq": seq, "outcome": OutcomeServed, "where": where})
	emit(Outcome{Seq: seq, Outcome: OutcomeServed, Where: where, Classification: class,
		E2EMs:    float64(e2e) / float64(time.Millisecond),
		UploadMs: uploadSec * 1000})
}

func (s *Session) fail(seq int64, recv time.Time, where string, err error, emit func(Outcome)) {
	s.failed.Add(1)
	s.ing.met.failed.Inc()
	s.span("frame", recv, time.Since(recv), map[string]any{"seq": seq, "outcome": OutcomeFailed, "where": where})
	emit(Outcome{Seq: seq, Outcome: OutcomeFailed, Where: where, Error: err.Error()})
}

// argmax returns the index of the largest logit.
func argmax(xs []float32) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

// dedupEntry is one remembered served frame.
type dedupEntry struct {
	hash           uint64
	classification []int
	where          string
	at             time.Time
}

// dedupCache is a fixed-window ring of recent served frames, searched
// by Hamming distance. Window sizes are single digits, so linear scan
// beats any index.
type dedupCache struct {
	entries []dedupEntry
	next    int
}

func newDedupCache(window int) *dedupCache {
	return &dedupCache{entries: make([]dedupEntry, 0, window)}
}

func (c *dedupCache) lookup(hash uint64, now time.Time, ttl time.Duration, maxDist int) (dedupEntry, int, bool) {
	bestDist := maxDist + 1
	var best dedupEntry
	for _, e := range c.entries {
		if now.Sub(e.at) > ttl {
			continue
		}
		if d := imaging.HammingDistance64(hash, e.hash); d < bestDist {
			bestDist = d
			best = e
		}
	}
	if bestDist <= maxDist {
		return best, bestDist, true
	}
	return dedupEntry{}, 0, false
}

func (c *dedupCache) insert(hash uint64, class []int, where string, at time.Time) {
	e := dedupEntry{hash: hash, classification: class, where: where, at: at}
	if cap(c.entries) == 0 {
		return
	}
	if len(c.entries) < cap(c.entries) {
		c.entries = append(c.entries, e)
		return
	}
	c.entries[c.next] = e
	c.next = (c.next + 1) % len(c.entries)
}
