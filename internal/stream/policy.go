package stream

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"harvest/internal/energy"
	"harvest/internal/imaging"
	"harvest/internal/serve"
	"harvest/internal/transfer"
)

// DefaultQueueThreshold is the local queue depth at which an edge
// replica starts shipping frames to the cloud tier.
const DefaultQueueThreshold = 4

// Decision is one offload choice, made per admitted frame.
type Decision struct {
	// Cloud is true when the frame should ship to the cloud tier.
	Cloud bool
	// EstWait is the estimated completion wait on the chosen tier,
	// used by the drop-stale gate. Zero when serving locally (the
	// session asks the local backend itself).
	EstWait time.Duration
	// Reason names the pressure signal that flipped the decision:
	// "queue" or "power".
	Reason string
	// QueueDepth is the local queue depth observed at decision time.
	QueueDepth int64
	// PowerW is the modeled edge power draw at decision time (zero
	// unless a power budget is configured).
	PowerW float64
}

// OffloadPolicy decides, per frame at admission, whether an edge
// replica serves locally or ships the frame to cloud replicas over a
// modeled uplink (paper §4: Jetson-class edge keeps the 60 FPS SLO
// only while its queue is short; past that, cloud wins despite the
// link cost). The policy also models the uplink itself: one radio,
// serialized, with per-chunk protocol overhead.
type OffloadPolicy struct {
	// Cloud reaches the cloud tier (typically a harvest-router over
	// datacenter replicas).
	Cloud *serve.Client
	// Link models the edge→cloud uplink.
	Link transfer.Link
	// ChunkBytes is the link's message size for per-message overhead
	// accounting (0 = single message).
	ChunkBytes int
	// QueueThreshold is the local queue depth (frames enqueued but not
	// dispatched) at which offload engages (default 4).
	QueueThreshold int
	// EdgePowerBudgetW, when >0 with Power set, also engages offload
	// when the modeled edge power draw exceeds this budget.
	EdgePowerBudgetW float64
	// Power maps edge utilization to watts (required for
	// EdgePowerBudgetW).
	Power *energy.Model
	// LinkTimeScale is the fraction of the modeled link time really
	// slept (0 = full fidelity, negative = none), mirroring the serve
	// tier's TimeScale convention of scaling modeled latency into wall
	// time.
	LinkTimeScale float64

	// uplinkMu serializes the radio: two frames cannot transmit
	// concurrently over one uplink.
	uplinkMu sync.Mutex
	// uplinkBusy counts frames currently transmitting or queued for
	// the radio; it feeds the cloud-side wait estimate.
	uplinkBusy atomic.Int64

	// powerMu guards the edge-utilization EWMA behind PowerW.
	powerMu    sync.Mutex
	busyEWMA   float64
	lastUpdate time.Time
}

func (p *OffloadPolicy) threshold() int {
	if p.QueueThreshold <= 0 {
		return DefaultQueueThreshold
	}
	return p.QueueThreshold
}

func (p *OffloadPolicy) linkScale() float64 {
	if p.LinkTimeScale == 0 {
		return 1
	}
	if p.LinkTimeScale < 0 {
		return 0
	}
	return p.LinkTimeScale
}

func (p *OffloadPolicy) messages(payloadBytes int) int {
	return transfer.MessagesFor(payloadBytes, p.ChunkBytes)
}

// noteEdgeCompute feeds the power meter with one locally-served
// frame's compute seconds. The EWMA approximates edge utilization:
// compute time relative to the wall time since the previous sample.
func (p *OffloadPolicy) noteEdgeCompute(computeSeconds float64) {
	if p.EdgePowerBudgetW <= 0 || p.Power == nil || computeSeconds <= 0 {
		return
	}
	now := time.Now()
	p.powerMu.Lock()
	defer p.powerMu.Unlock()
	if p.lastUpdate.IsZero() {
		p.lastUpdate = now
		p.busyEWMA = 0
		return
	}
	dt := now.Sub(p.lastUpdate).Seconds()
	p.lastUpdate = now
	if dt <= 0 {
		dt = computeSeconds
	}
	util := computeSeconds / dt
	if util > 1 {
		util = 1
	}
	const alpha = 0.2
	p.busyEWMA = (1-alpha)*p.busyEWMA + alpha*util
}

// edgePowerW returns the modeled edge power draw at current
// utilization (zero when no power budget is configured).
func (p *OffloadPolicy) edgePowerW() float64 {
	if p.EdgePowerBudgetW <= 0 || p.Power == nil {
		return 0
	}
	p.powerMu.Lock()
	util := p.busyEWMA
	p.powerMu.Unlock()
	return p.Power.PowerAt(util)
}

// Decide picks the serving tier for one frame of payloadBytes, given
// the local tier's wait estimate and the frame's remaining budget.
// Offload engages when the local queue depth crosses the threshold,
// the modeled edge power draw exceeds its budget, or the edge alone
// cannot meet the deadline that the cloud path still can. The returned
// EstWait for a cloud decision prices the serialized radio (frames
// already on the uplink transmit first) plus one propagation delay,
// scaled to wall time like the sleeps in Ship.
func (p *OffloadPolicy) Decide(local Backend, model string, payloadBytes int, estLocal, remaining time.Duration) Decision {
	if p == nil || p.Cloud == nil {
		return Decision{}
	}
	qd, err := local.QueueDepth(model)
	if err != nil {
		return Decision{}
	}
	d := Decision{QueueDepth: qd, PowerW: p.edgePowerW()}
	switch {
	case qd >= int64(p.threshold()):
		d.Reason = "queue"
	case d.PowerW > 0 && d.PowerW > p.EdgePowerBudgetW:
		d.Reason = "power"
	case estLocal > remaining:
		d.Reason = "deadline"
	default:
		return d
	}
	d.Cloud = true
	occupancy := p.uplinkBusy.Load()
	modeled := float64(occupancy+1)*p.Link.TransmitOnlySeconds(payloadBytes, p.ChunkBytes) + p.Link.RTTSeconds
	d.EstWait = time.Duration(p.linkScale() * modeled * float64(time.Second))
	return d
}

// Ship transmits the frame over the modeled uplink and runs it on the
// cloud tier. The serialization delay is slept while holding the radio
// (a second frame queues behind it); the propagation delay is slept
// outside the lock (propagation pipelines). Returns the cloud response
// and the modeled upload seconds (unscaled, for metrics and spans).
func (p *OffloadPolicy) Ship(ctx context.Context, id, model, tenant string, f Frame, format imaging.Format, deadline time.Time) (*serve.InferResponseJSON, float64, error) {
	transmit := p.Link.TransmitOnlySeconds(len(f.Image), p.ChunkBytes)
	uploadSec := transmit + p.Link.RTTSeconds
	scale := p.linkScale()

	p.uplinkBusy.Add(1)
	p.uplinkMu.Lock()
	if err := sleepCtx(ctx, time.Duration(scale*transmit*float64(time.Second))); err != nil {
		p.uplinkMu.Unlock()
		p.uplinkBusy.Add(-1)
		return nil, uploadSec, err
	}
	p.uplinkMu.Unlock()
	p.uplinkBusy.Add(-1)
	if err := sleepCtx(ctx, time.Duration(scale*p.Link.RTTSeconds*float64(time.Second))); err != nil {
		return nil, uploadSec, err
	}

	deadlineMs := float64(time.Until(deadline)) / float64(time.Millisecond)
	if deadlineMs <= 0 {
		return nil, uploadSec, fmt.Errorf("stream: deadline expired on %s uplink", p.Link.Name)
	}
	out, err := p.Cloud.Infer(ctx, model, serve.InferRequestJSON{
		ID:          id,
		Tenant:      tenant,
		Items:       1,
		Images:      [][]byte{f.Image},
		ImageFormat: format.String(),
		Class:       "realtime",
		DeadlineMs:  deadlineMs,
	})
	if err != nil {
		return nil, uploadSec, err
	}
	return out, uploadSec, nil
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
