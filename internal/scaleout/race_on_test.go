//go:build race

package scaleout

// raceEnabled reports whether the race detector is compiled in; the
// live-tier validation test relaxes its time compression under it
// (instrumentation overhead would otherwise swamp the compressed
// horizon).
const raceEnabled = true
