package scaleout

import (
	"testing"

	"harvest/internal/hw"
	"harvest/internal/models"
)

// TestValidateSimMatchesRealBelowSaturation is the acceptance check
// for the scale-out model: at a below-saturation operating point the
// discrete-event simulation must predict the live router-fronted
// tier's throughput within 15%.
func TestValidateSimMatchesRealBelowSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("spins a live multi-replica tier")
	}
	// The race detector multiplies the fixed per-request HTTP overhead;
	// compress time less under it so the overhead stays small relative
	// to the (compressed) horizon.
	timeScale := 0.05 // 6 simulated seconds in 0.3 s of wall clock
	if raceEnabled {
		timeScale = 0.5
	}
	res, err := Validate(ValidateConfig{
		Config: Config{
			Platform: hw.A100(), Model: models.NameViTBase,
			Replicas: 2, Batch: 64,
			// ~20% utilization: 20 batches/s offered against ~49
			// batches/s/replica capacity.
			OfferedBatchesPerSec: 20,
			HorizonSeconds:       6,
			Seed:                 11,
		},
		TimeScale: timeScale,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sim.Completed == 0 || res.Real.Completed == 0 {
		t.Fatalf("no completions: sim %d, real %d", res.Sim.Completed, res.Real.Completed)
	}
	if res.ThroughputRelErr > 0.15 {
		t.Errorf("sim-vs-real throughput disagreement %.1f%% (sim %.1f img/s, real %.1f img/s), want <= 15%%",
			res.ThroughputRelErr*100, res.Sim.Throughput, res.Real.Throughput)
	}
	t.Logf("throughput: sim %.1f img/s, real %.1f img/s (rel err %.2f%%)",
		res.Sim.Throughput, res.Real.Throughput, res.ThroughputRelErr*100)
	t.Logf("p99 latency: sim %.2f ms, real %.2f ms (rel err %.2f%%)",
		res.Sim.P99LatencySeconds*1000, res.Real.P99LatencySeconds*1000, res.P99RelErr*100)
}

// TestValidateUsesRouterFailoverSurface: the validation replays
// through the same /v2 surface serve.Client uses, so an invalid
// config must surface as an error, not a hang.
func TestValidateConfigErrors(t *testing.T) {
	if _, err := Validate(ValidateConfig{}); err == nil {
		t.Error("nil platform accepted")
	}
	if _, err := Validate(ValidateConfig{Config: Config{
		Platform: hw.A100(), Model: "ghost", Replicas: 1, OfferedBatchesPerSec: 1,
	}}); err == nil {
		t.Error("unknown model accepted")
	}
}
