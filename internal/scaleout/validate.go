package scaleout

import (
	"context"
	"fmt"
	"math"
	"net"
	"net/http"
	"sync"
	"time"

	"harvest/internal/engine"
	"harvest/internal/serve"
	"harvest/internal/stats"
	"harvest/internal/workload"
)

// ValidateConfig drives one (platform, model, batch, offered-rate)
// operating point through both the discrete-event simulation (Run) and
// a live multi-replica serving tier: real harvest-serve backends with
// TimeScale pacing behind a real health-checked Router, all in
// process over loopback HTTP.
type ValidateConfig struct {
	Config
	// TimeScale compresses real time: replicas really sleep
	// TimeScale * modeled seconds, arrivals are replayed at
	// TimeScale * their simulated offsets, and measured latencies are
	// divided by TimeScale before comparison. Default 0.1 (a 10 s
	// simulated horizon runs in 1 s of wall clock). Values well below
	// ~0.05 start to measure loopback HTTP overhead instead of the
	// modeled system.
	TimeScale float64
}

// ValidateResult compares the analytic model against the live tier.
type ValidateResult struct {
	// Sim is the discrete-event prediction for the operating point.
	Sim Result
	// Real is the measurement from the live router-fronted tier,
	// rescaled into simulated units (divide latencies by TimeScale)
	// so the two Results are directly comparable.
	Real Result
	// ThroughputRelErr is |real-sim| / sim for throughput.
	ThroughputRelErr float64
	// P99RelErr is |real-sim| / sim for P99 latency.
	P99RelErr float64
}

func relErr(real, sim float64) float64 {
	if sim == 0 {
		if real == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(real-sim) / sim
}

// listenLoopback serves h on an ephemeral loopback port and returns
// its base URL and a shutdown func.
func listenLoopback(h http.Handler) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), stop, nil
}

// Validate closes the loop between the scale-out *model* and the
// scale-out *system*: it runs cfg through the simulation, then stands
// up cfg.Replicas real single-model servers behind a Router, replays
// the identical Poisson arrival trace (same seed) against the
// router's HTTP surface, and reports throughput and P99 deltas. Close
// agreement at a below-saturation operating point is what licenses
// using the fast simulation as a predictor for capacity planning of
// the real tier.
func Validate(cfg ValidateConfig) (*ValidateResult, error) {
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 0.1
	}
	if cfg.HorizonSeconds <= 0 {
		cfg.HorizonSeconds = 30
	}
	sim, err := Run(cfg.Config)
	if err != nil {
		return nil, err
	}
	batch := sim.Batch // Run resolved the auto-batch

	// The live tier: one single-model server per simulated replica.
	var stops []func()
	defer func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}()
	var urls []string
	for i := 0; i < cfg.Replicas; i++ {
		eng, err := engine.New(cfg.Platform, cfg.Model)
		if err != nil {
			return nil, err
		}
		srv := serve.NewServer()
		if err := srv.Register(serve.ModelConfig{
			Name:     cfg.Model,
			Engine:   eng,
			MaxBatch: batch,
			// The sim models whole batches as single jobs; a zero
			// batching window makes each replayed request dispatch as
			// its own batch the same way.
			QueueDelay: 0,
			Instances:  1,
			TimeScale:  cfg.TimeScale,
			// The sim queues without bound; match it.
			MaxQueueDepth: len(serveTraceCap(cfg.Config, batch)) + 1,
		}); err != nil {
			srv.Close()
			return nil, err
		}
		stops = append(stops, srv.Close)
		url, stop, err := listenLoopback(srv.Handler())
		if err != nil {
			return nil, err
		}
		stops = append(stops, stop)
		urls = append(urls, url)
	}
	router, err := serve.NewRouter(urls, serve.RouterConfig{
		Pool: serve.PoolConfig{
			// Refresh load snapshots well inside the replay so
			// queue-depth-aware dispatch has live data.
			ProbeInterval: 20 * time.Millisecond,
		},
	})
	if err != nil {
		return nil, err
	}
	stops = append(stops, router.Close)
	routerURL, stopRouter, err := listenLoopback(router.Handler())
	if err != nil {
		return nil, err
	}
	stops = append(stops, stopRouter)
	client := serve.NewClient(routerURL)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := client.WaitReady(ctx); err != nil {
		return nil, err
	}

	// Replay the identical arrival trace in compressed real time.
	rng := stats.NewRNG(cfg.Seed)
	trace := workload.PoissonTrace(rng, cfg.OfferedBatchesPerSec, cfg.HorizonSeconds, batch)
	var (
		mu        sync.Mutex
		latencies []float64
		completed int
		failures  int
		lastErr   error
	)
	start := time.Now()
	horizonReal := time.Duration(cfg.HorizonSeconds * cfg.TimeScale * float64(time.Second))
	var wg sync.WaitGroup
	for _, a := range trace {
		at := time.Duration(a.Time * cfg.TimeScale * float64(time.Second))
		wg.Add(1)
		go func(at time.Duration, items int) {
			defer wg.Done()
			time.Sleep(time.Until(start.Add(at)))
			sent := time.Now()
			_, err := client.Infer(ctx, cfg.Model, serve.InferRequestJSON{Items: items})
			done := time.Now()
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				failures++
				lastErr = err
				return
			}
			// Same horizon rule as the sim: completions after the
			// (compressed) horizon are backlog, not throughput.
			if done.Sub(start) > horizonReal {
				return
			}
			completed++
			latencies = append(latencies, done.Sub(sent).Seconds()/cfg.TimeScale)
		}(at, a.Items)
	}
	wg.Wait()
	if failures > 0 {
		return nil, fmt.Errorf("scaleout: validate: %d/%d replayed requests failed: %w",
			failures, len(trace), lastErr)
	}

	real := Result{
		Replicas:         cfg.Replicas,
		Batch:            batch,
		OfferedImgPerSec: cfg.OfferedBatchesPerSec * float64(batch),
		Completed:        completed,
	}
	if completed > 0 {
		real.Throughput = float64(completed*batch) / cfg.HorizonSeconds
		real.MeanLatencySeconds = stats.Mean(latencies)
		real.P99LatencySeconds = stats.Percentile(latencies, 99)
	}
	// Estimated, not measured: the replicas' modeled service time over
	// replica-seconds, the same accounting the sim uses.
	eng, err := engine.New(cfg.Platform, cfg.Model)
	if err == nil {
		if st, ierr := eng.Infer(batch); ierr == nil {
			real.Utilization = float64(completed) * st.Seconds /
				(float64(cfg.Replicas) * cfg.HorizonSeconds)
		}
	}

	return &ValidateResult{
		Sim:              sim,
		Real:             real,
		ThroughputRelErr: relErr(real.Throughput, sim.Throughput),
		P99RelErr:        relErr(real.P99LatencySeconds, sim.P99LatencySeconds),
	}, nil
}

// serveTraceCap regenerates the trace to size the replica admission
// queues (the sim's queue is unbounded; shedding would invalidate the
// comparison).
func serveTraceCap(cfg Config, batch int) []workload.Arrival {
	rng := stats.NewRNG(cfg.Seed)
	return workload.PoissonTrace(rng, cfg.OfferedBatchesPerSec, cfg.HorizonSeconds, batch)
}
