// Package scaleout models data-parallel scale-out of the inference
// backend across multiple GPUs — the paper's Table 1 nodes carry two
// GPUs but its evaluation uses one, and §3 notes the backend "is
// prepared for future scale-out through different parallelism
// strategies". Replicated engines behind a least-loaded dispatcher are
// simulated under open-loop Poisson load with the discrete-event
// simulator, yielding throughput and queueing-latency distributions.
//
// Validate closes the loop between the model and the real system: it
// replays the same seeded trace against a live router-fronted tier of
// harvest-serve replicas and reports sim-vs-real throughput/P99
// deltas (recorded in EXPERIMENTS.md).
package scaleout

import (
	"fmt"
	"math"

	"harvest/internal/engine"
	"harvest/internal/hw"
	"harvest/internal/sim"
	"harvest/internal/stats"
	"harvest/internal/workload"
)

// Config describes one scale-out simulation.
type Config struct {
	Platform *hw.Platform
	Model    string
	// Replicas is the number of data-parallel engine replicas (one per
	// GPU). Each replica holds its own copy of the weights.
	Replicas int
	// Batch is the fused batch size each replica executes. 0 selects
	// the replica's largest engine-only batch capped at 64 (scale-out
	// replicas run without co-located GPU preprocessing).
	Batch int
	// OfferedBatchesPerSec is the open-loop arrival rate of batch
	// requests.
	OfferedBatchesPerSec float64
	// HorizonSeconds is the simulated duration (default 30).
	HorizonSeconds float64
	// DispatchOverheadSeconds models the router/sync cost per batch
	// (default 200us).
	DispatchOverheadSeconds float64
	Seed                    uint64
}

// Result summarizes the simulation.
type Result struct {
	Replicas         int
	Batch            int
	OfferedImgPerSec float64
	// Throughput is completed images / horizon.
	Throughput float64
	// MeanLatencySeconds / P99LatencySeconds are request latencies
	// including queueing.
	MeanLatencySeconds float64
	P99LatencySeconds  float64
	// Utilization is replica busy time *within the horizon* divided by
	// (replicas * horizon): a batch still executing when the horizon
	// closes contributes the busy time it accrued inside it.
	Utilization float64
	Completed   int
}

// Run simulates the configuration.
func Run(cfg Config) (Result, error) {
	if cfg.Platform == nil {
		return Result{}, fmt.Errorf("scaleout: nil platform")
	}
	if cfg.Replicas <= 0 {
		return Result{}, fmt.Errorf("scaleout: non-positive replicas %d", cfg.Replicas)
	}
	if cfg.OfferedBatchesPerSec <= 0 {
		return Result{}, fmt.Errorf("scaleout: non-positive offered rate")
	}
	if cfg.HorizonSeconds <= 0 {
		cfg.HorizonSeconds = 30
	}
	if cfg.DispatchOverheadSeconds == 0 {
		cfg.DispatchOverheadSeconds = 200e-6
	}
	eng, err := engine.New(cfg.Platform, cfg.Model)
	if err != nil {
		return Result{}, err
	}
	batch := cfg.Batch
	if batch == 0 {
		batch = eng.MaxBatch(hw.EndToEndMaxBatch)
	}
	st, err := eng.Infer(batch)
	if err != nil {
		return Result{}, err
	}
	serviceTime := st.Seconds + cfg.DispatchOverheadSeconds

	s := sim.New()
	// A capacity-R resource with earliest-free assignment is exactly a
	// least-loaded dispatcher over R identical replicas.
	pool := sim.NewResource(s, "replicas", cfg.Replicas)
	rng := stats.NewRNG(cfg.Seed)
	trace := workload.PoissonTrace(rng, cfg.OfferedBatchesPerSec, cfg.HorizonSeconds, batch)

	var latencies []float64
	completed := 0
	busyInHorizon := 0.0
	for _, a := range trace {
		arrival := a.Time
		s.Schedule(arrival, func() {
			pool.Submit(serviceTime, func(start, end float64) {
				// Busy time is clipped to the horizon: counting only
				// batches that *complete* inside it would bias
				// utilization low exactly at saturation, where the
				// most work is still in flight when the horizon
				// closes.
				if clipped := math.Min(end, cfg.HorizonSeconds) - math.Min(start, cfg.HorizonSeconds); clipped > 0 {
					busyInHorizon += clipped
				}
				// Only completions inside the measurement horizon
				// count; work still queued at the horizon is backlog,
				// not throughput.
				if end > cfg.HorizonSeconds {
					return
				}
				latencies = append(latencies, end-arrival)
				completed++
			})
		})
	}
	s.Run()

	res := Result{
		Replicas:         cfg.Replicas,
		Batch:            batch,
		OfferedImgPerSec: cfg.OfferedBatchesPerSec * float64(batch),
		Completed:        completed,
		Utilization:      busyInHorizon / (float64(cfg.Replicas) * cfg.HorizonSeconds),
	}
	if completed > 0 {
		res.Throughput = float64(completed*batch) / cfg.HorizonSeconds
		res.MeanLatencySeconds = stats.Mean(latencies)
		res.P99LatencySeconds = stats.Percentile(latencies, 99)
	}
	return res, nil
}

// SaturationSweep runs the configuration at increasing offered load
// and returns one Result per rate, exposing where each replica count
// saturates (the scale-out capacity curve).
func SaturationSweep(cfg Config, rates []float64) ([]Result, error) {
	out := make([]Result, 0, len(rates))
	for _, r := range rates {
		c := cfg
		c.OfferedBatchesPerSec = r
		res, err := Run(c)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
