//go:build !race

package scaleout

const raceEnabled = false
