package scaleout

import (
	"testing"

	"harvest/internal/hw"
	"harvest/internal/models"
)

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("nil platform accepted")
	}
	if _, err := Run(Config{Platform: hw.A100(), Model: models.NameViTBase,
		Replicas: 0, OfferedBatchesPerSec: 1}); err == nil {
		t.Error("zero replicas accepted")
	}
	if _, err := Run(Config{Platform: hw.A100(), Model: models.NameViTBase,
		Replicas: 1}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := Run(Config{Platform: hw.A100(), Model: "ghost",
		Replicas: 1, OfferedBatchesPerSec: 1}); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestUnderloadServesOfferedLoad(t *testing.T) {
	res, err := Run(Config{
		Platform: hw.A100(), Model: models.NameViTBase,
		Replicas: 1, Batch: 64,
		OfferedBatchesPerSec: 20, // well under ~49 batches/s capacity
		HorizonSeconds:       10, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput < res.OfferedImgPerSec*0.9 {
		t.Errorf("underload throughput %v below offered %v", res.Throughput, res.OfferedImgPerSec)
	}
	if res.Utilization > 0.7 {
		t.Errorf("underload utilization %v too high", res.Utilization)
	}
	if res.MeanLatencySeconds <= 0 || res.P99LatencySeconds < res.MeanLatencySeconds {
		t.Errorf("latency stats inconsistent: %+v", res)
	}
}

func TestTwoReplicasDoubleCapacity(t *testing.T) {
	base := Config{
		Platform: hw.A100(), Model: models.NameViTBase,
		Batch: 64, HorizonSeconds: 10, Seed: 2,
	}
	// Overload both so throughput measures capacity.
	one := base
	one.Replicas = 1
	one.OfferedBatchesPerSec = 200
	r1, err := Run(one)
	if err != nil {
		t.Fatal(err)
	}
	two := base
	two.Replicas = 2
	two.OfferedBatchesPerSec = 200
	r2, err := Run(two)
	if err != nil {
		t.Fatal(err)
	}
	ratio := r2.Throughput / r1.Throughput
	if ratio < 1.85 || ratio > 2.1 {
		t.Errorf("2-replica capacity ratio %.3f, want ~2", ratio)
	}
	if r1.Utilization < 0.95 || r2.Utilization < 0.95 {
		t.Errorf("overloaded pools not saturated: %v %v", r1.Utilization, r2.Utilization)
	}
}

func TestQueueingLatencyDropsWithSecondReplica(t *testing.T) {
	base := Config{
		Platform: hw.V100(), Model: models.NameViTBase,
		Batch: 64, HorizonSeconds: 10, Seed: 3,
		OfferedBatchesPerSec: 18, // ~78% of one V100 replica's capacity
	}
	one := base
	one.Replicas = 1
	r1, err := Run(one)
	if err != nil {
		t.Fatal(err)
	}
	two := base
	two.Replicas = 2
	r2, err := Run(two)
	if err != nil {
		t.Fatal(err)
	}
	if r2.MeanLatencySeconds >= r1.MeanLatencySeconds {
		t.Errorf("second replica did not reduce latency: %v vs %v",
			r2.MeanLatencySeconds, r1.MeanLatencySeconds)
	}
}

func TestAutoBatchUsesOOMBoundary(t *testing.T) {
	res, err := Run(Config{
		Platform: hw.Jetson(), Model: models.NameViTBase,
		Replicas: 1, OfferedBatchesPerSec: 5, HorizonSeconds: 5, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Batch != 8 {
		t.Errorf("auto batch %d, want Jetson ViT_Base engine-only boundary 8", res.Batch)
	}
}

// TestUtilizationAtSaturationNotBiasedLow: busy time is clipped to the
// horizon, so a saturated pool reports ~1.0 even when batches are
// still executing when the horizon closes. The old accounting counted
// only *completed* batches' service time, which at saturation with
// service times comparable to the horizon under-reported utilization
// by up to one batch per replica.
func TestUtilizationAtSaturationNotBiasedLow(t *testing.T) {
	res, err := Run(Config{
		Platform: hw.Jetson(), Model: models.NameViTBase,
		Replicas: 1, Batch: 8,
		OfferedBatchesPerSec: 1000, // far past capacity: never idle
		HorizonSeconds:       1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization < 0.97 || res.Utilization > 1.0000001 {
		t.Errorf("saturated utilization %v, want ~1.0 (busy time clipped to horizon)", res.Utilization)
	}
}

func TestSaturationSweep(t *testing.T) {
	results, err := SaturationSweep(Config{
		Platform: hw.A100(), Model: models.NameResNet50,
		Replicas: 2, Batch: 64, HorizonSeconds: 5, Seed: 5,
	}, []float64{10, 50, 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("sweep results %d", len(results))
	}
	// Latency must be non-decreasing with load.
	if results[2].MeanLatencySeconds < results[0].MeanLatencySeconds {
		t.Error("latency decreased under heavier load")
	}
	// Throughput is capped at capacity.
	if results[2].Throughput > results[2].OfferedImgPerSec {
		t.Error("throughput exceeded offered load")
	}
}
