// Package heatmap renders per-tile inference results into field
// heatmaps — the visualization output of the HARVEST offline workflow
// ("ultimately generating fine-grained heatmaps", paper §2.2.2).
package heatmap

import (
	"fmt"
	"io"
	"math"

	"harvest/internal/imaging"
)

// Map is a dense grid of scalar values in [0, 1].
type Map struct {
	Cols, Rows int
	Values     []float64 // row-major
}

// New allocates a zero heatmap.
func New(cols, rows int) (*Map, error) {
	if cols <= 0 || rows <= 0 {
		return nil, fmt.Errorf("heatmap: invalid dimensions %dx%d", cols, rows)
	}
	return &Map{Cols: cols, Rows: rows, Values: make([]float64, cols*rows)}, nil
}

// Set writes a value, clamped to [0, 1].
func (m *Map) Set(x, y int, v float64) error {
	if x < 0 || x >= m.Cols || y < 0 || y >= m.Rows {
		return fmt.Errorf("heatmap: (%d,%d) outside %dx%d", x, y, m.Cols, m.Rows)
	}
	if math.IsNaN(v) {
		v = 0
	}
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	m.Values[y*m.Cols+x] = v
	return nil
}

// At reads a value.
func (m *Map) At(x, y int) float64 { return m.Values[y*m.Cols+x] }

// Mean returns the average cell value.
func (m *Map) Mean() float64 {
	s := 0.0
	for _, v := range m.Values {
		s += v
	}
	return s / float64(len(m.Values))
}

// colormap maps v in [0,1] through a blue-green-yellow-red ramp.
func colormap(v float64) (r, g, b uint8) {
	switch {
	case v < 0.25:
		t := v / 0.25
		return 0, uint8(255 * t), 255
	case v < 0.5:
		t := (v - 0.25) / 0.25
		return 0, 255, uint8(255 * (1 - t))
	case v < 0.75:
		t := (v - 0.5) / 0.25
		return uint8(255 * t), 255, 0
	default:
		t := (v - 0.75) / 0.25
		return 255, uint8(255 * (1 - t)), 0
	}
}

// Render draws the heatmap with cellPx pixels per cell.
func (m *Map) Render(cellPx int) (*imaging.Image, error) {
	if cellPx <= 0 {
		return nil, fmt.Errorf("heatmap: invalid cell size %d", cellPx)
	}
	im := imaging.NewImage(m.Cols*cellPx, m.Rows*cellPx)
	for y := 0; y < m.Rows; y++ {
		for x := 0; x < m.Cols; x++ {
			r, g, b := colormap(m.At(x, y))
			for dy := 0; dy < cellPx; dy++ {
				for dx := 0; dx < cellPx; dx++ {
					im.Set(x*cellPx+dx, y*cellPx+dy, r, g, b)
				}
			}
		}
	}
	return im, nil
}

// WritePPM renders the heatmap and writes it as a PPM stream.
func (m *Map) WritePPM(w io.Writer, cellPx int) error {
	im, err := m.Render(cellPx)
	if err != nil {
		return err
	}
	return imaging.EncodePPM(w, im)
}

// FromScores builds a heatmap from per-tile class scores: each tile's
// value is the softmax probability mass of targetClass.
func FromScores(cols, rows int, logits [][]float32, targetClass int) (*Map, error) {
	m, err := New(cols, rows)
	if err != nil {
		return nil, err
	}
	if len(logits) != cols*rows {
		return nil, fmt.Errorf("heatmap: %d score rows for %dx%d grid", len(logits), cols, rows)
	}
	for i, row := range logits {
		if targetClass < 0 || targetClass >= len(row) {
			return nil, fmt.Errorf("heatmap: class %d outside %d-way output", targetClass, len(row))
		}
		// Softmax probability of the target class.
		maxv := row[0]
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var denom float64
		for _, v := range row {
			denom += math.Exp(float64(v - maxv))
		}
		p := math.Exp(float64(row[targetClass]-maxv)) / denom
		if err := m.Set(i%cols, i/cols, p); err != nil {
			return nil, err
		}
	}
	return m, nil
}
