package heatmap

import (
	"bytes"
	"math"
	"testing"

	"harvest/internal/imaging"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 3); err == nil {
		t.Error("zero cols accepted")
	}
	m, err := New(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cols != 4 || m.Rows != 3 || len(m.Values) != 12 {
		t.Errorf("map %+v", m)
	}
}

func TestSetClampsAndBounds(t *testing.T) {
	m, _ := New(2, 2)
	if err := m.Set(0, 0, 1.5); err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 1 {
		t.Errorf("clamped high value %v", m.At(0, 0))
	}
	if err := m.Set(1, 1, -0.5); err != nil {
		t.Fatal(err)
	}
	if m.At(1, 1) != 0 {
		t.Errorf("clamped low value %v", m.At(1, 1))
	}
	if err := m.Set(0, 0, math.NaN()); err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 0 {
		t.Error("NaN not sanitized")
	}
	if err := m.Set(2, 0, 0.5); err == nil {
		t.Error("out-of-range cell accepted")
	}
}

func TestMean(t *testing.T) {
	m, _ := New(2, 1)
	_ = m.Set(0, 0, 0.2)
	_ = m.Set(1, 0, 0.8)
	if mean := m.Mean(); math.Abs(mean-0.5) > 1e-12 {
		t.Errorf("mean %v", mean)
	}
}

func TestColormapEndpoints(t *testing.T) {
	// v=0 is blue-ish (cold), v=1 is red (hot).
	r0, _, b0 := colormap(0)
	if b0 != 255 || r0 != 0 {
		t.Errorf("cold endpoint r=%d b=%d", r0, b0)
	}
	r1, g1, _ := colormap(1)
	if r1 != 255 || g1 != 0 {
		t.Errorf("hot endpoint r=%d g=%d", r1, g1)
	}
	// Midpoint is green-ish.
	_, gm, _ := colormap(0.5)
	if gm != 255 {
		t.Errorf("mid endpoint g=%d", gm)
	}
}

func TestRender(t *testing.T) {
	m, _ := New(3, 2)
	im, err := m.Render(8)
	if err != nil {
		t.Fatal(err)
	}
	if im.W != 24 || im.H != 16 {
		t.Errorf("render %dx%d", im.W, im.H)
	}
	if _, err := m.Render(0); err == nil {
		t.Error("zero cell size accepted")
	}
	// Cell fill: every pixel of cell (0,0) has the same color.
	_ = m.Set(0, 0, 0.9)
	im2, _ := m.Render(4)
	r0, g0, b0 := im2.At(0, 0)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			r, g, b := im2.At(x, y)
			if r != r0 || g != g0 || b != b0 {
				t.Fatal("cell not uniformly filled")
			}
		}
	}
}

func TestWritePPM(t *testing.T) {
	m, _ := New(2, 2)
	var buf bytes.Buffer
	if err := m.WritePPM(&buf, 4); err != nil {
		t.Fatal(err)
	}
	im, err := imaging.DecodePPM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if im.W != 8 || im.H != 8 {
		t.Errorf("ppm %dx%d", im.W, im.H)
	}
}

func TestFromScores(t *testing.T) {
	logits := [][]float32{
		{10, 0}, // class 0 near-certain
		{0, 10}, // class 0 near-zero
		{0, 0},  // uniform -> 0.5
		{5, 5},  // uniform -> 0.5
	}
	m, err := FromScores(2, 2, logits, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) < 0.99 {
		t.Errorf("cell 0 %v, want ~1", m.At(0, 0))
	}
	if m.At(1, 0) > 0.01 {
		t.Errorf("cell 1 %v, want ~0", m.At(1, 0))
	}
	if math.Abs(m.At(0, 1)-0.5) > 1e-6 || math.Abs(m.At(1, 1)-0.5) > 1e-6 {
		t.Errorf("uniform cells %v %v, want 0.5", m.At(0, 1), m.At(1, 1))
	}
}

func TestFromScoresErrors(t *testing.T) {
	if _, err := FromScores(2, 2, [][]float32{{1, 2}}, 0); err == nil {
		t.Error("wrong score count accepted")
	}
	if _, err := FromScores(1, 1, [][]float32{{1, 2}}, 5); err == nil {
		t.Error("out-of-range class accepted")
	}
}
