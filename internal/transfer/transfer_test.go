package transfer

import (
	"math"
	"testing"

	"harvest/internal/imaging"
	"harvest/internal/stats"
)

func TestLinkTransmitSeconds(t *testing.T) {
	l := Link{Name: "test", UplinkBitsPerSec: 8e6, RTTSeconds: 0.01, PerMessageOverheadBytes: 0}
	// 1 MB at 8 Mbit/s = 1 s, plus 10 ms RTT.
	if got := l.TransmitSeconds(1_000_000); math.Abs(got-1.01) > 1e-9 {
		t.Errorf("transmit %v, want 1.01", got)
	}
	// Overhead counts.
	l.PerMessageOverheadBytes = 1000
	if got := l.TransmitSeconds(0); math.Abs(got-(0.01+0.001)) > 1e-9 {
		t.Errorf("overhead-only transmit %v", got)
	}
}

func TestChunkedTransmitChargesOverheadPerMessage(t *testing.T) {
	l := Link{Name: "test", UplinkBitsPerSec: 8e6, RTTSeconds: 0.01, PerMessageOverheadBytes: 1000}

	// Regression: a 1 MB payload streamed in 100 KB chunks crosses the
	// link as 10 HTTP messages, so framing overhead is paid 10 times,
	// not once per image. At 8 Mbit/s: payload 1 s + overhead 10*1 ms.
	payload, chunk := 1_000_000, 100_000
	if got := MessagesFor(payload, chunk); got != 10 {
		t.Fatalf("MessagesFor = %d, want 10", got)
	}
	got := l.TransmitSecondsChunked(payload, chunk)
	want := 0.01 + 1.0 + 10*0.001
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("chunked transmit %v, want %v", got, want)
	}
	// The old per-image accounting undercharges by 9 messages of
	// framing; make sure the chunked path really differs from it.
	if single := l.TransmitSeconds(payload); got <= single {
		t.Errorf("chunked transmit %v not more expensive than single-message %v", got, single)
	}

	// A payload that fits one chunk prices identically to the
	// single-message model, so non-streaming callers are unchanged.
	if a, b := l.TransmitSecondsChunked(50_000, 100_000), l.TransmitSeconds(50_000); math.Abs(a-b) > 1e-12 {
		t.Errorf("single-chunk payload priced %v, single-message %v", a, b)
	}
	// Chunk size of zero means unchunked.
	if a, b := l.TransmitSecondsChunked(payload, 0), l.TransmitSeconds(payload); math.Abs(a-b) > 1e-12 {
		t.Errorf("chunk=0 priced %v, single-message %v", a, b)
	}

	// Uneven division rounds the message count up.
	if got := MessagesFor(250_001, 100_000); got != 3 {
		t.Errorf("MessagesFor(250001,100000) = %d, want 3", got)
	}

	// TransmitOnly excludes the RTT and is what serializes a shared
	// radio between back-to-back frames.
	only := l.TransmitOnlySeconds(payload, chunk)
	if math.Abs(only-(want-0.01)) > 1e-9 {
		t.Errorf("transmit-only %v, want %v", only, want-0.01)
	}
}

func TestLinkThroughputIgnoresRTT(t *testing.T) {
	l := Link{Name: "test", UplinkBitsPerSec: 80e6, RTTSeconds: 10, PerMessageOverheadBytes: 0}
	// Pipelined: RTT does not bound throughput. 10 KB images at
	// 80 Mbit/s -> 1000 img/s.
	if got := l.ThroughputImagesPerSec(10_000); math.Abs(got-1000) > 1e-6 {
		t.Errorf("throughput %v, want 1000", got)
	}
}

func TestStandardLinksOrdering(t *testing.T) {
	links := Links()
	if len(links) != 4 {
		t.Fatalf("links %d", len(links))
	}
	// WiFi > 5G > LTE > Satellite on uplink.
	for i := 1; i < len(links); i++ {
		if links[i].UplinkBitsPerSec >= links[i-1].UplinkBitsPerSec {
			t.Errorf("link %s not slower than %s", links[i].Name, links[i-1].Name)
		}
	}
}

func TestCompressedSizeRealEncoding(t *testing.T) {
	im := imaging.Synthesize(128, 128, imaging.KindLeaf, stats.NewRNG(1))
	hi, err := CompressedSize(im, 95)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := CompressedSize(im, 20)
	if err != nil {
		t.Fatal(err)
	}
	if hi <= lo {
		t.Errorf("quality 95 (%d bytes) not larger than quality 20 (%d bytes)", hi, lo)
	}
	if lo <= 0 || hi >= 128*128*3 {
		t.Errorf("implausible sizes: lo=%d hi=%d", lo, hi)
	}
	if _, err := CompressedSize(im, 0); err == nil {
		t.Error("quality 0 accepted")
	}
	if _, err := CompressedSize(im, 101); err == nil {
		t.Error("quality 101 accepted")
	}
}

func TestDecideOffload(t *testing.T) {
	link := Link{Name: "t", UplinkBitsPerSec: 10e6, RTTSeconds: 0.02, PerMessageOverheadBytes: 0}
	// Fast edge: edge wins.
	d := DecideOffload(link, 10_000, 0.005, 0.001)
	if !d.EdgeWins {
		t.Errorf("edge should win: %+v", d)
	}
	// Slow edge, tiny payload: cloud wins.
	d = DecideOffload(link, 1_000, 0.5, 0.001)
	if d.EdgeWins {
		t.Errorf("cloud should win: %+v", d)
	}
	if d.CloudLatency != d.UploadLatency+0.001 {
		t.Errorf("cloud latency %v inconsistent", d.CloudLatency)
	}
	if d.StreamBound <= 0 {
		t.Error("stream bound missing")
	}
}

func TestOffloadCrossoverWithLinkSpeed(t *testing.T) {
	// The same workload flips from cloud-favored to edge-favored as
	// the link degrades — the §2.2.1 transmission challenge.
	payload := 50_000
	edge, cloud := 0.02, 0.004
	fast := DecideOffload(WiFi(), payload, edge, cloud)
	slow := DecideOffload(Satellite(), payload, edge, cloud)
	if fast.EdgeWins {
		t.Errorf("WiFi should favor cloud: %+v", fast)
	}
	if !slow.EdgeWins {
		t.Errorf("satellite should favor edge: %+v", slow)
	}
}
