// Package transfer models field-to-cloud data transmission for the
// online scenario. Paper §2.2.1: "This setup presents challenges for
// data transmission, especially when transmitting large image data to
// the cloud. It would be beneficial to leverage advanced wireless
// capabilities."
//
// The link models cover the radio technologies a farm deployment sees;
// combined with real compressed image sizes (internal/imaging's actual
// JPEG encoder), they answer the paper's implicit question: when does
// shipping images to the cloud beat inferring on the edge?
package transfer

import (
	"fmt"
	"strings"

	"harvest/internal/imaging"
)

// Link models a wireless uplink.
type Link struct {
	Name string
	// UplinkBitsPerSec is the sustained uplink goodput.
	UplinkBitsPerSec float64
	// RTTSeconds is the round-trip latency (request + response).
	RTTSeconds float64
	// PerMessageOverheadBytes covers framing/headers per image.
	PerMessageOverheadBytes int
}

// Standard rural-connectivity link models.
func LTE() Link {
	return Link{Name: "LTE", UplinkBitsPerSec: 10e6, RTTSeconds: 0.05, PerMessageOverheadBytes: 400}
}

// FiveG returns a mid-band 5G uplink.
func FiveG() Link {
	return Link{Name: "5G", UplinkBitsPerSec: 50e6, RTTSeconds: 0.02, PerMessageOverheadBytes: 400}
}

// WiFi returns a farm-station 802.11ac uplink.
func WiFi() Link {
	return Link{Name: "WiFi", UplinkBitsPerSec: 120e6, RTTSeconds: 0.005, PerMessageOverheadBytes: 300}
}

// Satellite returns a LEO satellite uplink (remote-field fallback).
func Satellite() Link {
	return Link{Name: "Satellite", UplinkBitsPerSec: 5e6, RTTSeconds: 0.12, PerMessageOverheadBytes: 600}
}

// Links returns the four standard link models.
func Links() []Link { return []Link{WiFi(), FiveG(), LTE(), Satellite()} }

// ByName resolves a link model by its common flag spelling ("wifi",
// "5g"/"fiveg", "lte"/"4g", "satellite"/"sat"/"leo"), case-insensitive.
func ByName(name string) (Link, error) {
	switch strings.ToLower(name) {
	case "wifi":
		return WiFi(), nil
	case "5g", "fiveg":
		return FiveG(), nil
	case "lte", "4g":
		return LTE(), nil
	case "satellite", "sat", "leo":
		return Satellite(), nil
	}
	return Link{}, fmt.Errorf("unknown link model %q (want wifi, 5g, lte or satellite)", name)
}

// TransmitSeconds returns the time to upload payloadBytes as a single
// HTTP message, including the round trip.
func (l Link) TransmitSeconds(payloadBytes int) float64 {
	return l.TransmitSecondsChunked(payloadBytes, 0)
}

// MessagesFor returns how many HTTP messages a payload occupies when
// streamed in chunks of at most chunkBytes (non-positive chunkBytes
// means one unchunked message).
func MessagesFor(payloadBytes, chunkBytes int) int {
	if chunkBytes <= 0 || payloadBytes <= chunkBytes {
		return 1
	}
	return (payloadBytes + chunkBytes - 1) / chunkBytes
}

// TransmitSecondsChunked returns the time to upload payloadBytes split
// into chunkBytes-sized HTTP messages, including one round trip.
// PerMessageOverheadBytes is charged once per message: a chunked
// streaming upload pays framing on every chunk, not once per image, so
// pricing it per image (the pre-streaming behavior) undercharges the
// link exactly when the offload policy leans on it hardest.
func (l Link) TransmitSecondsChunked(payloadBytes, chunkBytes int) float64 {
	return l.RTTSeconds + l.TransmitOnlySeconds(payloadBytes, chunkBytes)
}

// TransmitOnlySeconds is the serialization time of a chunked upload —
// the duration the payload actually occupies the uplink — without the
// propagation round trip. This is the term that serializes back-to-back
// frames on a shared radio; RTT pipelines and does not.
func (l Link) TransmitOnlySeconds(payloadBytes, chunkBytes int) float64 {
	msgs := MessagesFor(payloadBytes, chunkBytes)
	bits := (float64(payloadBytes) + float64(msgs*l.PerMessageOverheadBytes)) * 8
	return bits / l.UplinkBitsPerSec
}

// ThroughputImagesPerSec returns the steady-state upload rate for a
// stream of images of the given size (pipelined, so RTT amortizes).
func (l Link) ThroughputImagesPerSec(payloadBytes int) float64 {
	bits := float64(payloadBytes+l.PerMessageOverheadBytes) * 8
	return l.UplinkBitsPerSec / bits
}

// CompressedSize really encodes the image at the given JPEG quality
// and returns the payload size in bytes.
func CompressedSize(im *imaging.Image, quality int) (int, error) {
	if quality < 1 || quality > 100 {
		return 0, fmt.Errorf("transfer: quality %d outside [1,100]", quality)
	}
	var counter countWriter
	if err := imaging.EncodeJPEG(&counter, im, quality); err != nil {
		return 0, err
	}
	return counter.n, nil
}

type countWriter struct{ n int }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += len(p)
	return len(p), nil
}

// OffloadDecision compares edge inference against cloud offload for
// one image stream.
type OffloadDecision struct {
	Link          Link
	PayloadBytes  int
	EdgeLatency   float64 // seconds per image, on-device
	CloudLatency  float64 // seconds per image: upload + cloud pipeline
	UploadLatency float64
	// EdgeWins is true when on-device inference has lower latency.
	EdgeWins bool
	// StreamBound is the upload-limited images/second of the link.
	StreamBound float64
}

// DecideOffload compares per-image latency of edge inference vs
// uploading to a cloud pipeline. edgeSeconds and cloudSeconds are the
// respective per-image processing costs (from the platform models).
func DecideOffload(link Link, payloadBytes int, edgeSeconds, cloudSeconds float64) OffloadDecision {
	up := link.TransmitSeconds(payloadBytes)
	d := OffloadDecision{
		Link:          link,
		PayloadBytes:  payloadBytes,
		EdgeLatency:   edgeSeconds,
		UploadLatency: up,
		CloudLatency:  up + cloudSeconds,
		StreamBound:   link.ThroughputImagesPerSec(payloadBytes),
	}
	d.EdgeWins = d.EdgeLatency <= d.CloudLatency
	return d
}
