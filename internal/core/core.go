// Package core is the top-level HARVEST-Go API: it ties the substrates
// together into the two things a user does with this repository —
// *characterize* (regenerate the paper's evaluation artifacts and check
// them against the published anchors) and *deploy* (stand up an
// inference server for a platform/model set).
package core

import (
	"fmt"
	"io"
	"time"

	"harvest/internal/engine"
	"harvest/internal/experiments"
	"harvest/internal/hw"
	"harvest/internal/modelio"
	"harvest/internal/models"
	"harvest/internal/preprocess"
	"harvest/internal/serve"
	"harvest/internal/trace"
)

// Report is the outcome of a characterization run.
type Report struct {
	Artifacts []*experiments.Artifact
	Anchors   []experiments.Anchor
}

// Characterize regenerates the requested artifacts (nil ids = the
// paper's eight) and recomputes every paper anchor.
func Characterize(opts experiments.Options, ids []string) (*Report, error) {
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	r := &Report{}
	for _, id := range ids {
		a, err := experiments.RunAny(id, opts)
		if err != nil {
			return nil, fmt.Errorf("core: artifact %s: %w", id, err)
		}
		r.Artifacts = append(r.Artifacts, a)
	}
	anchors, err := experiments.CompareAnchors()
	if err != nil {
		return nil, err
	}
	r.Anchors = anchors
	return r, nil
}

// WorstAnchorError returns the largest relative error across anchors
// whose tolerance is proportional (OOM-boundary anchors are exact and
// reported separately by ExactAnchorsHold).
func (r *Report) WorstAnchorError() float64 {
	worst := 0.0
	for _, an := range r.Anchors {
		if re := an.RelErr(); re > worst {
			worst = re
		}
	}
	return worst
}

// WriteTo renders every artifact and the anchor comparison.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, a := range r.Artifacts {
		n, err := io.WriteString(w, a.Render()+"\n")
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	n, err := io.WriteString(w, "=== paper anchors ===\n")
	total += int64(n)
	if err != nil {
		return total, err
	}
	for _, an := range r.Anchors {
		n, err := fmt.Fprintln(w, an)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// DeploymentConfig describes a serving deployment.
type DeploymentConfig struct {
	// Platform is a hw platform key ("A100", "V100", "Jetson").
	Platform string
	// Models lists Table 3 model names; empty means all four.
	Models []string
	// QueueDelay is the dynamic batching window (default 2ms).
	QueueDelay time.Duration
	// Instances per model (default 1).
	Instances int
	// TimeScale: fraction of modeled latency instances really sleep.
	TimeScale float64
	// DrainTimeout bounds Close's graceful drain per model
	// (default serve.DefaultDrainTimeout).
	DrainTimeout time.Duration
	// MaxQueueDepth bounds each model's admission queue; a full queue
	// sheds new requests with serve.ErrOverloaded / HTTP 429
	// (default serve.DefaultMaxQueueDepth).
	MaxQueueDepth int
	// RealtimeBudget is the implicit deadline of realtime-class
	// requests (default serve.DefaultRealtimeBudget, the paper's
	// 16.7 ms SLO; negative disables).
	RealtimeBudget time.Duration
	// TraceCapacity bounds the server's trace ring buffer, which feeds
	// GET /v2/trace (default serve.DefaultTraceCapacity; negative
	// disables tracing).
	TraceCapacity int
	// Preproc attaches an encoded-image preprocessor to every model so
	// POST /v2/infer accepts images_b64 alongside raw tensors. Choices
	// are Fig. 7's CPU engines: "cpu" (or "pytorch") for the
	// torchvision-style pipeline, "cv2" for the OpenCV-style one.
	// Empty disables the encoded path.
	Preproc string
	// PreprocWorkers sizes the decode/resize worker pool shared by all
	// models (0 = one worker per CPU). The pool's goroutines live for
	// the process lifetime. Only meaningful when Preproc is set.
	PreprocWorkers int
	// RealBackend, when non-empty, attaches an executable compute
	// backend at the named precision ("fp32", "fp16", "bf16", "int8")
	// to every model engine: tensor inputs on POST /v2/infer then run
	// real forward passes through the packed/quantized GEMM kernels
	// instead of the simulation-only path. Full-size Table 3 models are
	// compute-heavy on CPU; pair with Models to limit scope.
	RealBackend string
	// RealSeed seeds the real backend's weight initialization
	// (0 means 1, so deployments are reproducible by default).
	RealSeed uint64
	// TenantQuotas maps tenant ids (or "*" for a wildcard applied to any
	// unlisted tenant) to per-tenant admission quotas on every model.
	TenantQuotas map[string]serve.TenantQuota
	// TenantQuantum is the deficit-round-robin quantum in request-items
	// (default serve.DefaultTenantQuantum).
	TenantQuantum int
	// AntiStarveEvery gives lower-priority lanes a guaranteed 1-in-N
	// dispatch under saturating higher-priority load (default
	// serve.DefaultAntiStarveEvery; negative disables).
	AntiStarveEvery int
	// RealCheckpoint, when non-empty, loads the real backend's weights
	// from this .hvt checkpoint instead of random initialization,
	// quantizing them at load into the RealBackend precision (fp32 when
	// RealBackend is empty). The checkpoint must match the single
	// configured model: a kind/name/geometry mismatch is a typed
	// modelio.ErrModelMismatch at startup, never silent random weights.
	RealCheckpoint string
}

// newPreprocessor builds the configured CPU preprocessing engine for
// one model, sized to that model's Table 3 input resolution.
func newPreprocessor(kind string, p *hw.Platform, out int, pool *preprocess.Pool) (*preprocess.CPUEngine, error) {
	var e *preprocess.CPUEngine
	switch kind {
	case "cpu", "pytorch":
		e = &preprocess.CPUEngine{Platform: p, Out: out}
	case "cv2":
		e = preprocess.NewCV2Engine(p, out)
	default:
		return nil, fmt.Errorf("core: unknown preprocessor %q (want cpu, pytorch or cv2)", kind)
	}
	// Serving needs the actual tensors, not just the modeled cost.
	e.Materialize = true
	e.Pool = pool
	return e, nil
}

// NewDeployment builds a running inference server hosting the
// configured models on the platform's calibrated engines. The caller
// owns the returned server and must Close it.
func NewDeployment(cfg DeploymentConfig) (*serve.Server, error) {
	p, err := hw.ByName(cfg.Platform)
	if err != nil {
		return nil, err
	}
	names := cfg.Models
	if len(names) == 0 {
		names = models.Names()
	}
	if cfg.QueueDelay == 0 {
		cfg.QueueDelay = 2 * time.Millisecond
	}
	if cfg.TraceCapacity == 0 {
		cfg.TraceCapacity = serve.DefaultTraceCapacity
	}
	srv := serve.NewServer()
	if cfg.TraceCapacity > 0 {
		// Installed before Register so every model records into it.
		srv.SetTrace(trace.NewRing(cfg.TraceCapacity))
	}
	var checkpoint *modelio.Checkpoint
	if cfg.RealCheckpoint != "" {
		if len(names) != 1 {
			srv.Close()
			return nil, fmt.Errorf("core: RealCheckpoint holds one model's weights; configure exactly one model (got %d)", len(names))
		}
		checkpoint, err = modelio.LoadFile(cfg.RealCheckpoint)
		if err != nil {
			srv.Close()
			return nil, err
		}
	}
	var pool *preprocess.Pool
	if cfg.Preproc != "" {
		pool = preprocess.NewPool(cfg.PreprocWorkers)
	}
	for _, name := range names {
		eng, err := engine.New(p, name)
		if err != nil {
			srv.Close()
			return nil, err
		}
		if checkpoint != nil {
			// Trained weights, quantized at load into the serving
			// precision. This replaces the old silent fallback where a
			// reduced-precision -real deployment re-initialized random
			// weights because checkpoint load existed only in fp32.
			f, err := modelio.ExecutableFor(checkpoint, name,
				eng.Entry.Spec.InputSize, eng.Entry.Spec.NumClasses, cfg.RealBackend)
			if err != nil {
				srv.Close()
				return nil, err
			}
			eng.Real = f
		} else if cfg.RealBackend != "" {
			seed := cfg.RealSeed
			if seed == 0 {
				seed = 1
			}
			if err := eng.AttachReal(cfg.RealBackend, seed); err != nil {
				srv.Close()
				return nil, err
			}
		}
		mc := serve.ModelConfig{
			Name:            name,
			Engine:          eng,
			QueueDelay:      cfg.QueueDelay,
			Instances:       cfg.Instances,
			TimeScale:       cfg.TimeScale,
			DrainTimeout:    cfg.DrainTimeout,
			MaxQueueDepth:   cfg.MaxQueueDepth,
			RealtimeBudget:  cfg.RealtimeBudget,
			TenantQuotas:    cfg.TenantQuotas,
			TenantQuantum:   cfg.TenantQuantum,
			AntiStarveEvery: cfg.AntiStarveEvery,
		}
		if cfg.RealBackend != "" || checkpoint != nil {
			mc.InputSize = eng.Entry.Spec.InputSize
		}
		if pool != nil {
			entry, err := models.ByName(name)
			if err != nil {
				srv.Close()
				return nil, err
			}
			pre, err := newPreprocessor(cfg.Preproc, p, entry.Spec.InputSize, pool)
			if err != nil {
				srv.Close()
				return nil, err
			}
			mc.Preproc = pre
			mc.InputSize = entry.Spec.InputSize
		}
		if err := srv.Register(mc); err != nil {
			srv.Close()
			return nil, err
		}
	}
	return srv, nil
}
