package core

import (
	"bytes"
	"context"
	"errors"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"harvest/internal/experiments"
	"harvest/internal/imaging"
	"harvest/internal/modelio"
	"harvest/internal/models"
	"harvest/internal/serve"
	"harvest/internal/stats"
)

func TestCharacterizeSubset(t *testing.T) {
	r, err := Characterize(experiments.Options{Quick: true, Seed: 1}, []string{"table1", "table3"})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Artifacts) != 2 {
		t.Fatalf("artifacts %d", len(r.Artifacts))
	}
	if len(r.Anchors) < 40 {
		t.Fatalf("anchors %d", len(r.Anchors))
	}
	if worst := r.WorstAnchorError(); worst > 0.05 {
		t.Errorf("worst anchor error %.3f exceeds 5%%", worst)
	}
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"table1", "table3", "paper anchors", "Fig5/A100"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestCharacterizeUnknownArtifact(t *testing.T) {
	if _, err := Characterize(experiments.Options{Quick: true}, []string{"fig99"}); err == nil {
		t.Error("unknown artifact accepted")
	}
}

func TestNewDeployment(t *testing.T) {
	srv, err := NewDeployment(DeploymentConfig{Platform: "A100"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	names := srv.Models()
	if len(names) != 4 {
		t.Fatalf("deployed %d models, want 4", len(names))
	}
	resp, err := srv.Submit(context.Background(), &serve.Request{Model: "ViT_Small", Items: 4})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Items != 4 || resp.ComputeSeconds <= 0 {
		t.Errorf("response %+v", resp)
	}
}

func TestNewDeploymentErrors(t *testing.T) {
	if _, err := NewDeployment(DeploymentConfig{Platform: "H100"}); err == nil {
		t.Error("unknown platform accepted")
	}
	if _, err := NewDeployment(DeploymentConfig{Platform: "A100", Models: []string{"ghost"}}); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestNewDeploymentSubsetJetson(t *testing.T) {
	srv, err := NewDeployment(DeploymentConfig{
		Platform: "Jetson", Models: []string{"ViT_Tiny"}, Instances: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cfg, err := srv.ModelConfigFor("ViT_Tiny")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Instances != 2 {
		t.Errorf("instances %d", cfg.Instances)
	}
	// Jetson ViT_Tiny engine max batch is 196.
	if cfg.MaxBatch != 196 {
		t.Errorf("derived max batch %d, want 196", cfg.MaxBatch)
	}
}

func TestNewDeploymentWithPreprocessing(t *testing.T) {
	srv, err := NewDeployment(DeploymentConfig{
		Platform: "A100", Models: []string{"ViT_Tiny", "ViT_Base"},
		Preproc: "cpu", PreprocWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Each model's preprocessor must target that model's input size.
	for name, want := range map[string]int{"ViT_Tiny": 32, "ViT_Base": 224} {
		cfg, err := srv.ModelConfigFor(name)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Preproc == nil || cfg.Preproc.OutRes() != want {
			t.Errorf("%s preprocessor %v, want OutRes %d", name, cfg.Preproc, want)
		}
		if cfg.InputSize != want {
			t.Errorf("%s InputSize %d, want %d", name, cfg.InputSize, want)
		}
	}
	// An encoded frame flows through Submit end-to-end.
	im := imaging.Synthesize(64, 48, imaging.KindRows, stats.NewRNG(3))
	data, err := imaging.EncodeBytes(im, imaging.FormatJPEG)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Submit(context.Background(), &serve.Request{
		Model: "ViT_Tiny", Images: [][]byte{data},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Items != 1 || resp.PreprocessSeconds <= 0 {
		t.Errorf("response %+v", resp)
	}
}

func TestNewDeploymentPreprocEngines(t *testing.T) {
	for kind, label := range map[string]string{"pytorch": "PyTorch", "cv2": "CV2"} {
		srv, err := NewDeployment(DeploymentConfig{
			Platform: "V100", Models: []string{"ViT_Tiny"}, Preproc: kind,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := srv.ModelConfigFor("ViT_Tiny")
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Preproc.Name() != label {
			t.Errorf("%s engine label %q, want %q", kind, cfg.Preproc.Name(), label)
		}
		srv.Close()
	}
	if _, err := NewDeployment(DeploymentConfig{Platform: "A100", Preproc: "dali"}); err == nil {
		t.Error("unknown preprocessor accepted")
	}
}

func TestNewDeploymentRealCheckpoint(t *testing.T) {
	// Serving-path weight loading at reduced precision: a ViT_Tiny
	// checkpoint quantized at load into int8 must back the deployment,
	// and a mismatched checkpoint must fail fast with a typed error.
	m, err := models.NewViTModel(models.ViTTinyConfig(1000), stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "vit_tiny.hvt")
	if err := modelio.SaveFile(path, func(w io.Writer) error { return modelio.SaveViT(w, m) }); err != nil {
		t.Fatal(err)
	}

	srv, err := NewDeployment(DeploymentConfig{
		Platform: "Jetson", Models: []string{"ViT_Tiny"},
		RealBackend: "int8", RealCheckpoint: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	in := make([]float32, 3*32*32)
	for i := range in {
		in[i] = float32(i%13) / 13
	}
	resp, err := srv.Submit(context.Background(), &serve.Request{
		Model: "ViT_Tiny", Inputs: [][]float32{in},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Outputs) != 1 || len(resp.Outputs[0]) != 1000 {
		t.Fatalf("outputs %d x %d, want 1 x 1000", len(resp.Outputs), len(resp.Outputs[0]))
	}

	// Mismatch: the checkpoint is ViT_Tiny; hosting ResNet50 with it
	// must be a startup error, not silent random weights.
	if _, err := NewDeployment(DeploymentConfig{
		Platform: "Jetson", Models: []string{"ResNet50"},
		RealBackend: "int8", RealCheckpoint: path,
	}); !errors.Is(err, modelio.ErrModelMismatch) {
		t.Fatalf("mismatched checkpoint error = %v, want ErrModelMismatch", err)
	}
	// A checkpoint backs exactly one model.
	if _, err := NewDeployment(DeploymentConfig{
		Platform: "Jetson", RealCheckpoint: path,
	}); err == nil {
		t.Fatal("multi-model deployment with one checkpoint accepted")
	}
	// Unknown precision is typed too.
	if _, err := NewDeployment(DeploymentConfig{
		Platform: "Jetson", Models: []string{"ViT_Tiny"},
		RealBackend: "int4", RealCheckpoint: path,
	}); !errors.Is(err, modelio.ErrPrecision) {
		t.Fatalf("bad precision error = %v, want ErrPrecision", err)
	}
}
