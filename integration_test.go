package harvest

import (
	"bytes"
	"context"
	"testing"
	"time"

	"harvest/internal/datasets"
	"harvest/internal/engine"
	"harvest/internal/heatmap"
	"harvest/internal/hw"
	"harvest/internal/imaging"
	"harvest/internal/modelio"
	"harvest/internal/models"
	"harvest/internal/preprocess"
	"harvest/internal/serve"
	"harvest/internal/stats"
	"harvest/internal/stitch"
)

// TestFullSystemEndToEnd drives the complete HARVEST flow with real
// data: synthesize dataset samples, preprocess them on the CPU, serve
// them through the dynamic-batching server into a real model backend
// that round-tripped through checkpoint serialization, and render the
// predictions as a heatmap — every subsystem in one path.
func TestFullSystemEndToEnd(t *testing.T) {
	// 1. Dataset: corn growth stage tiles, materialized for real.
	spec, err := datasets.ByName(datasets.SlugCornGrowth)
	if err != nil {
		t.Fatal(err)
	}
	ds := datasets.MustNew(spec, 2026)
	const n = 6
	items := make([]preprocess.Item, n)
	for i := range items {
		items[i], err = preprocess.ItemFromDataset(ds, i)
		if err != nil {
			t.Fatal(err)
		}
	}

	// 2. Real CPU preprocessing to 32x32 model tensors.
	pre := &preprocess.CPUEngine{Platform: hw.A100(), Out: 32, Materialize: true}
	preRes, err := pre.ProcessBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	if len(preRes.Tensors) != n {
		t.Fatalf("preprocessed %d tensors", len(preRes.Tensors))
	}

	// 3. Model: build, serialize, reload (checkpoint round trip), and
	//    attach as the real backend of an engine.
	trained, err := models.NewViTModel(models.MicroViTConfig(spec.Classes), stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := modelio.SaveViT(&ckpt, trained); err != nil {
		t.Fatal(err)
	}
	cp, err := modelio.Load(&ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := modelio.BuildEngine(cp, "fp16"); err != nil {
		t.Fatal(err)
	}
	backend, err := modelio.LoadViT(cp)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(hw.A100(), models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	eng.Real = backend

	// 4. Serve over the dynamic-batching server.
	srv := serve.NewServer()
	defer srv.Close()
	if err := srv.Register(serve.ModelConfig{
		Name:       "corn-growth",
		Engine:     eng,
		MaxBatch:   16,
		QueueDelay: time.Millisecond,
		InputSize:  32,
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Submit(context.Background(), &serve.Request{
		ID: "field-1", Model: "corn-growth", Inputs: preRes.Tensors,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Outputs) != n {
		t.Fatalf("served %d outputs", len(resp.Outputs))
	}
	for _, logits := range resp.Outputs {
		if len(logits) != spec.Classes {
			t.Fatalf("logit width %d, want %d", len(logits), spec.Classes)
		}
	}

	// 5. Visualize as a field heatmap.
	hm, err := heatmap.FromScores(3, 2, resp.Outputs, 0)
	if err != nil {
		t.Fatal(err)
	}
	var img bytes.Buffer
	if err := hm.WritePPM(&img, 4); err != nil {
		t.Fatal(err)
	}
	decoded, err := imaging.DecodePPM(&img)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.W != 12 || decoded.H != 8 {
		t.Fatalf("heatmap %dx%d", decoded.W, decoded.H)
	}
}

// TestDroneWorkflowEndToEnd exercises the offline UAS path: stitch a
// capture grid, tile the mosaic, classify tiles with a real model, and
// verify tile/heatmap geometry stays consistent.
func TestDroneWorkflowEndToEnd(t *testing.T) {
	rng := stats.NewRNG(5)
	caps := make([]*imaging.Image, 6)
	for i := range caps {
		caps[i] = imaging.Synthesize(96, 96, imaging.KindRows, rng.Split())
	}
	grid, err := stitch.NewGrid(2, 3, 16, caps)
	if err != nil {
		t.Fatal(err)
	}
	mosaic := grid.Mosaic()
	tiles, err := stitch.TileImage(mosaic, 48, 48)
	if err != nil {
		t.Fatal(err)
	}
	cols, rows := stitch.GridDims(mosaic.W, mosaic.H, 48, 48)
	if len(tiles) != cols*rows {
		t.Fatalf("tile count %d != %dx%d", len(tiles), cols, rows)
	}

	backend, err := models.NewViTModel(models.MicroViTConfig(4), stats.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(hw.Jetson(), models.NameViTTiny)
	if err != nil {
		t.Fatal(err)
	}
	eng.Real = backend
	inputs := make([][]float32, len(tiles))
	for i, tile := range tiles {
		small := imaging.Resize(tile.Image, 32, 32)
		inputs[i] = imaging.Normalize(small, imaging.ImageNetMean, imaging.ImageNetStd)
	}
	logits, st, err := eng.InferTensors(inputs, 32)
	if err != nil {
		t.Fatal(err)
	}
	if st.Batch != len(tiles) || st.Seconds <= 0 {
		t.Fatalf("engine stats %+v", st)
	}
	hm, err := heatmap.FromScores(cols, rows, logits, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hm.Mean() < 0 || hm.Mean() > 1 {
		t.Fatalf("heatmap mean %v", hm.Mean())
	}
}
