// Package harvest's root benchmark harness: one testing.B benchmark per
// paper artifact (Tables 1-3, Figures 4-8) regenerating the artifact's
// data, plus ablation benchmarks for the design choices DESIGN.md §5
// calls out (dynamic batching window, preprocessing/inference overlap,
// multi-instance engines, preprocessing placement, precision).
//
// Run: go test -bench=. -benchmem
package harvest

import (
	"context"
	"fmt"
	"testing"
	"time"

	"harvest/internal/datasets"
	"harvest/internal/engine"
	"harvest/internal/experiments"
	"harvest/internal/hw"
	"harvest/internal/models"
	"harvest/internal/pipeline"
	"harvest/internal/preprocess"
	"harvest/internal/quant"
	"harvest/internal/serve"
	"harvest/internal/stats"
	"harvest/internal/tensor"
)

func benchOpts() experiments.Options {
	return experiments.Options{Quick: true, Seed: 42}
}

func runArtifact(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		a, err := experiments.RunAny(id, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(a.Render()) == 0 {
			b.Fatal("empty artifact")
		}
	}
}

// BenchmarkTable1_PracticalFLOPS regenerates Table 1 (platforms and
// GEMM-measured practical TFLOPS).
func BenchmarkTable1_PracticalFLOPS(b *testing.B) { runArtifact(b, "table1") }

// BenchmarkTable2_DatasetGen regenerates Table 2 (dataset inventory).
func BenchmarkTable2_DatasetGen(b *testing.B) { runArtifact(b, "table2") }

// BenchmarkTable3_ModelSpecs regenerates Table 3 (models, layer-wise
// GFLOPs, throughput upper bounds).
func BenchmarkTable3_ModelSpecs(b *testing.B) { runArtifact(b, "table3") }

// BenchmarkFig4_SizeDistribution regenerates Fig. 4 (image-size
// densities with modal labels).
func BenchmarkFig4_SizeDistribution(b *testing.B) { runArtifact(b, "fig4") }

// BenchmarkFig5_EngineScaling regenerates Fig. 5 (TFLOPS vs batch).
func BenchmarkFig5_EngineScaling(b *testing.B) { runArtifact(b, "fig5") }

// BenchmarkFig6_LatencyVsBatch regenerates Fig. 6 (latency vs batch
// with the 60 QPS threshold).
func BenchmarkFig6_LatencyVsBatch(b *testing.B) { runArtifact(b, "fig6") }

// BenchmarkFig7_Preprocessing regenerates Fig. 7 (preprocessing latency
// and throughput per dataset and engine). The CPU baselines really run.
func BenchmarkFig7_Preprocessing(b *testing.B) { runArtifact(b, "fig7") }

// BenchmarkFig8_EndToEnd regenerates Fig. 8 (end-to-end latency and
// throughput at the largest batch before OOM).
func BenchmarkFig8_EndToEnd(b *testing.B) { runArtifact(b, "fig8") }

// BenchmarkExtension_Energy regenerates the energy-efficiency table.
func BenchmarkExtension_Energy(b *testing.B) { runArtifact(b, "energy") }

// BenchmarkExtension_Prediction regenerates the prediction-toolkit
// validation and planner tables.
func BenchmarkExtension_Prediction(b *testing.B) { runArtifact(b, "prediction") }

// BenchmarkExtension_ScaleOut regenerates the two-GPU scale-out study.
func BenchmarkExtension_ScaleOut(b *testing.B) { runArtifact(b, "scaleout") }

// BenchmarkExtension_Offload regenerates the edge-vs-cloud offload
// analysis (includes real JPEG encodes).
func BenchmarkExtension_Offload(b *testing.B) { runArtifact(b, "offload") }

// BenchmarkExtension_Roofline regenerates the compute/memory roofline
// analysis.
func BenchmarkExtension_Roofline(b *testing.B) { runArtifact(b, "roofline") }

// BenchmarkExtension_Ablations regenerates the DESIGN.md §5 ablation
// tables (simulated counterparts of the wall-clock ablation benches
// below).
func BenchmarkExtension_Ablations(b *testing.B) { runArtifact(b, "ablations") }

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkAblation_BatchingWindow measures served throughput under
// open-loop load for different dynamic-batching windows.
func BenchmarkAblation_BatchingWindow(b *testing.B) {
	for _, window := range []time.Duration{0, time.Millisecond, 5 * time.Millisecond} {
		b.Run(fmt.Sprintf("window=%s", window), func(b *testing.B) {
			srv := serve.NewServer()
			defer srv.Close()
			eng, err := engine.New(hw.A100(), models.NameViTSmall)
			if err != nil {
				b.Fatal(err)
			}
			if err := srv.Register(serve.ModelConfig{
				Name: "m", Engine: eng, MaxBatch: 64, QueueDelay: window,
			}); err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				done := make(chan error, 16)
				for r := 0; r < 16; r++ {
					go func() {
						_, err := srv.Submit(ctx, &serve.Request{Model: "m", Items: 4})
						done <- err
					}()
				}
				for r := 0; r < 16; r++ {
					if err := <-done; err != nil {
						b.Fatal(err)
					}
				}
			}
			st, err := srv.StatsFor("m")
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(st.MeanBatchFill, "batch-fill")
		})
	}
}

// BenchmarkAblation_Overlap compares pipelined vs strictly serial
// end-to-end execution (the Fig. 8 mechanism).
func BenchmarkAblation_Overlap(b *testing.B) {
	spec, err := datasets.ByName(datasets.SlugCornGrowth)
	if err != nil {
		b.Fatal(err)
	}
	for _, overlap := range []bool{false, true} {
		b.Run(fmt.Sprintf("overlap=%v", overlap), func(b *testing.B) {
			var thr float64
			for i := 0; i < b.N; i++ {
				res, err := pipeline.Run(pipeline.Config{
					Platform: hw.A100(), Model: models.NameViTBase,
					Dataset: spec, Batches: 16, Overlap: overlap,
				})
				if err != nil {
					b.Fatal(err)
				}
				thr = res.Throughput
			}
			b.ReportMetric(thr, "img/s")
		})
	}
}

// BenchmarkAblation_MultiInstance compares 1 vs 4 engine instances
// under many small concurrent requests (paper §5: multi-instance
// strategies improve responsiveness past the batch-scaling knee).
func BenchmarkAblation_MultiInstance(b *testing.B) {
	for _, instances := range []int{1, 4} {
		b.Run(fmt.Sprintf("instances=%d", instances), func(b *testing.B) {
			srv := serve.NewServer()
			defer srv.Close()
			eng, err := engine.New(hw.A100(), models.NameResNet50)
			if err != nil {
				b.Fatal(err)
			}
			if err := srv.Register(serve.ModelConfig{
				Name: "m", Engine: eng, MaxBatch: 16,
				QueueDelay: 200 * time.Microsecond, Instances: instances,
			}); err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				done := make(chan error, 32)
				for r := 0; r < 32; r++ {
					go func() {
						_, err := srv.Submit(ctx, &serve.Request{Model: "m", Items: 2})
						done <- err
					}()
				}
				for r := 0; r < 32; r++ {
					if err := <-done; err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkAblation_PreprocPlacement compares modeled GPU (DALI) vs
// real CPU preprocessing per platform on Plant Village images.
func BenchmarkAblation_PreprocPlacement(b *testing.B) {
	spec, err := datasets.ByName(datasets.SlugPlantVillage)
	if err != nil {
		b.Fatal(err)
	}
	ds := datasets.MustNew(spec, 42)
	items := make([]preprocess.Item, 4)
	for i := range items {
		items[i], err = preprocess.ItemFromDataset(ds, i)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range hw.FigureOrder() {
		for _, gpu := range []bool{true, false} {
			name := fmt.Sprintf("%s/gpu=%v", p.Name, gpu)
			b.Run(name, func(b *testing.B) {
				var eng preprocess.Engine
				if gpu {
					eng = &preprocess.GPUEngine{Platform: p, Out: 224}
				} else {
					eng = &preprocess.CPUEngine{Platform: p, Out: 224}
				}
				var sec float64
				for i := 0; i < b.N; i++ {
					res, err := eng.ProcessBatch(items)
					if err != nil {
						b.Fatal(err)
					}
					sec = res.Seconds
				}
				b.ReportMetric(sec*1000/float64(len(items)), "platform-ms/img")
			})
		}
	}
}

// BenchmarkAblation_CPUWorkers measures real CPU preprocessing with 1
// vs GOMAXPROCS workers (the paper's future-work parallel CPU path).
func BenchmarkAblation_CPUWorkers(b *testing.B) {
	spec, err := datasets.ByName(datasets.SlugPlantVillage)
	if err != nil {
		b.Fatal(err)
	}
	ds := datasets.MustNew(spec, 42)
	items := make([]preprocess.Item, 8)
	for i := range items {
		items[i], err = preprocess.ItemFromDataset(ds, i)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng := &preprocess.CPUEngine{Platform: hw.A100(), Out: 224, Workers: workers}
			for i := 0; i < b.N; i++ {
				if _, err := eng.ProcessBatch(items); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_Precision measures the real cost and error of
// running a tensor through fp16/bf16/int8 round trips (the precision
// trade-off of paper §3.1).
func BenchmarkAblation_Precision(b *testing.B) {
	rng := stats.NewRNG(1)
	base := make([]float32, 1<<16)
	for i := range base {
		base[i] = float32(rng.Float64()*4 - 2)
	}
	b.Run("fp16", func(b *testing.B) {
		xs := append([]float32(nil), base...)
		for i := 0; i < b.N; i++ {
			quant.RoundTripF16(xs)
		}
	})
	b.Run("bf16", func(b *testing.B) {
		xs := append([]float32(nil), base...)
		for i := 0; i < b.N; i++ {
			quant.RoundTripBF16(xs)
		}
	})
	b.Run("int8", func(b *testing.B) {
		p, err := quant.CalibrateInt8(base)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			qs := p.Quantize(base)
			_ = p.Dequantize(qs)
		}
	})
}

// BenchmarkRealForward_MicroViT measures a real micro-ViT forward pass
// on this machine (the functional compute backend).
func BenchmarkRealForward_MicroViT(b *testing.B) {
	m, err := models.NewViTModel(models.MicroViTConfig(10), stats.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.New(1, 3, 32, 32)
	x.RandInit(stats.NewRNG(2), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Forward(x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRealForward_MiniResNet measures a real mini-ResNet forward.
func BenchmarkRealForward_MiniResNet(b *testing.B) {
	m, err := models.NewResNetModel(models.MiniResNetConfig(10), stats.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.New(1, 3, 64, 64)
	x.RandInit(stats.NewRNG(2), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Forward(x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHostGEMM is the real Table 1 methodology on this machine.
func BenchmarkHostGEMM(b *testing.B) {
	a := tensor.New(384, 384)
	c := tensor.New(384, 384)
	a.RandInit(stats.NewRNG(1), 1)
	c.RandInit(stats.NewRNG(2), 1)
	flops := 2 * 384 * 384 * 384
	b.SetBytes(int64(flops))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(a, c)
	}
}
