GO ?= go

.PHONY: all build test race vet check bench bench-preproc

all: check

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-check the concurrency-heavy packages (serving path incl. the
# replica-pool router, the lock-free metrics recorders, the trace ring
# buffer, pipeline, the live sim-vs-real validation, and the pooled
# preprocessing engines).
race:
	$(GO) test -race ./internal/serve/... ./internal/metrics/... ./internal/trace/... ./internal/pipeline/... ./internal/scaleout/... ./internal/imaging/... ./internal/preprocess/...

# The CI gate: tier-1 tests plus vet and the race suite.
check: build vet test race

bench:
	$(GO) test -bench=. -benchmem

# Preprocessing microbenchmarks: fused-vs-naive kernel, pooled-vs-alloc
# buffers, throughput vs worker count on a 4K raw frame.
bench-preproc:
	$(GO) test ./internal/preprocess/ -run NONE -bench BenchmarkPreprocess -benchmem
