GO ?= go

.PHONY: all build test race vet check bench bench-preproc bench-load bench-fleet bench-gemm bench-stream bench-tenant

all: check

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-check the concurrency-heavy packages (serving path incl. the
# replica-pool router, the lock-free metrics recorders, the trace ring
# buffer, pipeline, the live sim-vs-real validation, the pooled
# preprocessing engines, the load harness, and the compute backend:
# the goroutine-parallel packed/quantized GEMM kernels and the pooled
# scratch buffers of the executable models, plus the streaming camera
# ingest tier with its async frame completions and serialized uplink).
race:
	$(GO) test -race ./internal/serve/... ./internal/fleet/... ./internal/metrics/... ./internal/trace/... ./internal/pipeline/... ./internal/scaleout/... ./internal/imaging/... ./internal/preprocess/... ./internal/loadgen/... ./internal/tensor/... ./internal/quant/... ./internal/models/... ./internal/stream/... ./internal/transfer/... ./internal/modelio/...

# The CI gate: tier-1 tests plus vet and the race suite.
check: build vet test race

bench:
	$(GO) test -bench=. -benchmem

# Real compute-backend benchmark: really executes 1024^3 GEMMs at every
# backend precision (naive fp32 baseline, packed fp32, f16/bf16, int8
# SWAR) plus end-to-end model forward passes, and records achieved
# GFLOPS, efficiency vs the measured fp32 roofline, and images/sec by
# precision into BENCH_PR8.json.
bench-gemm: build
	$(GO) run ./cmd/harvest-bench -gemmbench BENCH_PR8.json

# Preprocessing microbenchmarks: fused-vs-naive kernel, pooled-vs-alloc
# buffers, throughput vs worker count on a 4K raw frame.
bench-preproc:
	$(GO) test ./internal/preprocess/ -run NONE -bench BenchmarkPreprocess -benchmem

# Seeded ramp-to-failure sweep: self-hosts a 2-replica Jetson router
# serving ViT_Base at full modeled latency and ramps the open-loop
# classes from a healthy base rate (~50 req/s) to ~12x — past the
# fleet's ~375 req/s capacity — emitting BENCH_PR6.json (per-class
# throughput, service and intended-start percentiles, SLO attainment,
# 429/504 counts). Deterministic arrival schedules via -seed.
bench-load:
	$(GO) run ./cmd/harvest-loadgen -spawn 2 -platform Jetson \
		-model ViT_Base -timescale 1 -max-queue-depth 64 -name PR6 \
		-seed 1 -duration 12s -warmup 2s -shape ramp -peak-mult 12 \
		-class realtime:rate=30,items=1,slo=400ms \
		-class online:rate=20,items=1,slo=800ms \
		-class offline:workers=1,items=8

# Autoscaler churn scenario: a managed (lease-registered, SLO-driven)
# Jetson fleet serving ViT_Base under a seeded open-loop load step —
# 50 req/s stepping 6x to 300 req/s at t=8s, past the ~187 req/s
# single-replica knee — plus a replica crash at t=16s (no
# deregistration; the lease TTL-expires). Emits BENCH_PR7.json with the
# per-second timeline, the autoscaler's decision log (sim predictions
# vs observed demand) and the registry's membership events.
bench-fleet:
	$(GO) run ./cmd/harvest-loadgen -fleet-min 1 -fleet-max 4 \
		-platform Jetson -model ViT_Base -timescale 1 -name PR7 \
		-fleet-interval 2s -fleet-slo 250ms -fleet-lease-ttl 1s \
		-seed 1 -duration 24s -warmup 2s -shape step -peak-mult 6 \
		-step-at 8s -churn-kill-at 16s -timeline \
		-class online:rate=50,items=1,slo=800ms

# Streaming-camera scenario: 6 cameras at 60 FPS against a self-hosted
# undersized edge tier (one Jetson replica serving ViT_Base at full
# modeled latency — ~187 req/s capacity vs the 360 FPS aggregate —
# with streaming ingest + dedup cache) offloading to an in-process
# A100 cloud router over a modeled rural LTE uplink that cannot carry
# the full overflow either, so the admission gate sheds stale frames.
# Emits BENCH_PR9.json with per-camera drop rate, dedup hit rate,
# offload fraction and intended-start P99. Deterministic frame content
# via -seed.
bench-stream:
	$(GO) run ./cmd/harvest-loadgen -stream -model ViT_Base -name PR9 \
		-seed 1 -cameras 6 -static-cameras 2 -fps 60 -stream-frames 180 \
		-frame-size 96 -stream-budget 100ms -offload-queue-threshold 2 \
		-offload-link lte

# Multi-tenant isolation scenario: two well-behaved open-loop tenants
# (farm-a, farm-b) at 30 req/s each on a 2-replica Jetson fleet
# (~375 req/s aggregate capacity), first alone
# (BENCH_PR10_baseline.json), then beside an abusive closed-loop
# tenant — 16 workers that would saturate the fleet unmanaged — under
# a per-tenant quota (3 items/s per replica, 25% queue share). The
# quota is mirrored at the router (fleet-aggregate rate), so the hog's
# rejects are answered in one hop instead of spilling across the pool,
# and its Retry-After pushes the workers into jittered backoff.
# Deficit-round-robin scheduling plus the quota must keep the victims'
# P99 and SLO attainment within ~10% of their solo baseline while the
# hog eats its isolated 429 budget. The victim classes come first so
# their seeded arrival schedules are identical across both runs.
# Emits BENCH_PR10.json.
bench-tenant:
	$(GO) run ./cmd/harvest-loadgen -spawn 2 -platform Jetson \
		-model ViT_Base -timescale 1 -max-queue-depth 64 \
		-name PR10_baseline -seed 1 -duration 42s -warmup 2s \
		-class online:rate=30,items=1,slo=800ms,tenant=farm-a \
		-class online:rate=30,items=1,slo=800ms,tenant=farm-b
	$(GO) run ./cmd/harvest-loadgen -spawn 2 -platform Jetson \
		-model ViT_Base -timescale 1 -max-queue-depth 64 \
		-name PR10 -seed 1 -duration 42s -warmup 2s \
		-tenant-quota "hog:rate=3,burst=3,share=0.25" \
		-class online:rate=30,items=1,slo=800ms,tenant=farm-a \
		-class online:rate=30,items=1,slo=800ms,tenant=farm-b \
		-class online:workers=16,items=1,slo=800ms,tenant=hog
