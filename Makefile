GO ?= go

.PHONY: all build test race vet check bench

all: check

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-check the concurrency-heavy packages (serving path incl. the
# replica-pool router, the lock-free metrics recorders, the trace ring
# buffer, pipeline, and the live sim-vs-real validation).
race:
	$(GO) test -race ./internal/serve/... ./internal/metrics/... ./internal/trace/... ./internal/pipeline/... ./internal/scaleout/...

# The CI gate: tier-1 tests plus vet and the race suite.
check: build vet test race

bench:
	$(GO) test -bench=. -benchmem
