// Command harvest-datagen materializes samples of the synthetic
// agriculture datasets to disk, in each dataset's native format.
//
// Usage:
//
//	harvest-datagen [-dataset plant-village] [-count 16] [-out ./data] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"

	"harvest/internal/datasets"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("harvest-datagen: ")
	var (
		dataset = flag.String("dataset", datasets.SlugPlantVillage, "dataset slug (or 'all')")
		count   = flag.Int("count", 16, "samples to materialize per dataset")
		out     = flag.String("out", "./data", "output directory")
		seed    = flag.Uint64("seed", 42, "generation seed")
	)
	flag.Parse()

	var specs []datasets.Spec
	if *dataset == "all" {
		specs = datasets.All()
	} else {
		spec, err := datasets.ByName(*dataset)
		if err != nil {
			log.Fatal(err)
		}
		specs = []datasets.Spec{spec}
	}
	for _, spec := range specs {
		ds, err := datasets.New(spec, *seed)
		if err != nil {
			log.Fatal(err)
		}
		dir := filepath.Join(*out, spec.Slug)
		m, err := datasets.Materialize(ds, dir, *count)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d samples of %s to %s (+%s)",
			len(m.Entries), spec.Name, dir, datasets.ManifestName)
		// Round-trip check: the directory must open as a store.
		if _, err := datasets.OpenStore(dir); err != nil {
			log.Fatalf("store verification failed: %v", err)
		}
	}
	fmt.Println("done")
}
