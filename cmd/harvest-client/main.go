// Command harvest-client submits inference requests to a harvest-serve
// instance and reports latency statistics.
//
// Usage:
//
//	harvest-client [-url http://127.0.0.1:8000] [-model ViT_Tiny]
//	               [-requests 100] [-items 4] [-concurrency 8]
//	               [-class realtime|online|offline] [-deadline 50ms]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"harvest/internal/metrics"
	"harvest/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("harvest-client: ")
	var (
		url         = flag.String("url", "http://127.0.0.1:8000", "server base URL")
		model       = flag.String("model", "ViT_Tiny", "model to query")
		requests    = flag.Int("requests", 100, "number of requests")
		items       = flag.Int("items", 4, "images per request")
		concurrency = flag.Int("concurrency", 8, "in-flight requests")
		class       = flag.String("class", "", "scenario class: realtime, online (default) or offline")
		deadline    = flag.Duration("deadline", 0, "per-request deadline (0 = class default)")
	)
	flag.Parse()
	if _, err := serve.ParseClass(*class); err != nil {
		log.Fatal(err)
	}

	client := serve.NewClient(*url)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := client.WaitReady(ctx); err != nil {
		cancel()
		log.Fatal(err)
	}
	cancel()

	rec := &metrics.LatencyRecorder{}
	// Server-reported per-stage breakdown (timings_ms in each infer
	// response): where inside the server each request's time went.
	var admitRec, queueRec, assembleRec, computeRec metrics.LatencyRecorder
	sem := make(chan struct{}, *concurrency)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failed, shed, expired int
	start := time.Now()
	for i := 0; i < *requests; i++ {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			req := serve.InferRequestJSON{ID: fmt.Sprintf("req-%d", i), Items: *items, Class: *class}
			if *deadline > 0 {
				req.DeadlineMs = float64(*deadline) / float64(time.Millisecond)
			}
			t0 := time.Now()
			resp, err := client.Infer(context.Background(), *model, req)
			if err != nil {
				mu.Lock()
				switch {
				case errors.Is(err, serve.ErrOverloaded):
					shed++
				case errors.Is(err, serve.ErrDeadlineExpired):
					expired++
				default:
					failed++
				}
				mu.Unlock()
				return
			}
			rec.Observe(time.Since(t0).Seconds())
			if tm := resp.Timings; tm != nil {
				admitRec.Observe(tm.AdmitMs / 1000)
				queueRec.Observe(tm.QueueMs / 1000)
				assembleRec.Observe(tm.BatchAssemblyMs / 1000)
				computeRec.Observe(tm.ComputeMs / 1000)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	s := rec.Summary()
	fmt.Printf("model=%s requests=%d failed=%d shed=%d expired=%d\n", *model, *requests, failed, shed, expired)
	fmt.Printf("wall=%.2fs request-throughput=%.1f req/s image-throughput=%.1f img/s\n",
		elapsed, float64(rec.Count())/elapsed, float64(rec.Count()**items)/elapsed)
	fmt.Printf("latency ms: mean=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f\n",
		s.Mean*1000, s.P50*1000, s.P95*1000, s.P99*1000, s.Max*1000)
	if admitRec.Count() > 0 {
		fmt.Println("per-stage ms (server-reported timings_ms):")
		for _, st := range []struct {
			name string
			rec  *metrics.LatencyRecorder
		}{
			{"admit", &admitRec}, {"queue", &queueRec},
			{"batch-assembly", &assembleRec}, {"compute", &computeRec},
		} {
			fmt.Printf("  %-14s mean=%.3f p50=%.3f p95=%.3f p99=%.3f\n",
				st.name, st.rec.MeanMs(), st.rec.PercentileMs(50),
				st.rec.PercentileMs(95), st.rec.PercentileMs(99))
		}
	}

	// Server-side decomposition: how much of that latency was queueing
	// in the dynamic batcher vs. batch execution (paper Fig. 6).
	mctx, mcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer mcancel()
	mj, err := client.Metrics(mctx)
	if err != nil {
		log.Printf("server metrics unavailable: %v", err)
		return
	}
	for _, m := range mj.Models {
		if m.Model != *model {
			continue
		}
		fmt.Printf("server: requests=%d items=%d batches=%d errors=%d cancelled=%d shed=%d expired=%d\n",
			m.Requests, m.Items, m.Batches, m.Errors, m.Cancelled, m.Shed, m.Expired)
		fmt.Printf("server queue ms:   p50=%.2f p95=%.2f p99=%.2f\n",
			m.QueueMs.P50Ms, m.QueueMs.P95Ms, m.QueueMs.P99Ms)
		fmt.Printf("server compute ms: p50=%.2f p95=%.2f p99=%.2f\n",
			m.ComputeMs.P50Ms, m.ComputeMs.P95Ms, m.ComputeMs.P99Ms)
		for cls, q := range m.QueueMsByClass {
			fmt.Printf("server queue ms [%s]: p50=%.2f p95=%.2f p99=%.2f\n",
				cls, q.P50Ms, q.P95Ms, q.P99Ms)
		}
	}
}
