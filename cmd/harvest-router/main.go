// Command harvest-router runs the replica-pool router: a
// health-checked load balancer over multiple harvest-serve backends,
// exposing the same /v2/* surface as a single server so any client of
// harvest-serve works unchanged against it. Placement is
// queue-depth-aware and scenario-class-aware (realtime to the
// least-loaded replica, offline spilled to busy/draining ones),
// failing replicas are ejected after consecutive errors and readmitted
// via half-open probes, and in-flight requests fail over to surviving
// replicas.
//
// Camera ingest streams (POST /v2/streams/{camera}) proxy through with
// per-camera replica affinity: each camera consistently hashes onto a
// healthy replica, which owns the stream's ordering state and dedup
// cache; stream responses flush per outcome line, not per buffer.
//
// Usage:
//
//	harvest-router -replicas http://127.0.0.1:8000,http://127.0.0.1:8001
//	               [-addr :8100] [-probe-interval 250ms] [-eject-after 3]
//	               [-ejection-duration 2s] [-drain-timeout 5s]
//	               [-read-header-timeout 5s] [-trace-cap 4096]
//	               [-pprof-addr localhost:6061] [-max-body-bytes 67108864]
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"harvest/internal/pprofserve"
	"harvest/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("harvest-router: ")
	var (
		addr          = flag.String("addr", ":8100", "listen address")
		replicasArg   = flag.String("replicas", "", "comma-separated replica base URLs (required)")
		probeInterval = flag.Duration("probe-interval", serve.DefaultProbeInterval,
			"period of per-replica readiness probes and metrics refreshes")
		ejectAfter = flag.Int("eject-after", serve.DefaultEjectAfter,
			"consecutive errors before a replica is ejected")
		ejectionDuration = flag.Duration("ejection-duration", serve.DefaultEjectionDuration,
			"how long an ejected replica sits out before a half-open recovery probe")
		drainTimeout = flag.Duration("drain-timeout", serve.DefaultDrainTimeout,
			"how long shutdown waits for in-flight proxied requests")
		readHeaderTimeout = flag.Duration("read-header-timeout", 5*time.Second,
			"per-connection header read timeout (slowloris guard)")
		traceCap = flag.Int("trace-cap", serve.DefaultTraceCapacity,
			"trace ring-buffer capacity for GET /v2/trace (negative disables)")
		pprofAddr = flag.String("pprof-addr", "",
			"optional net/http/pprof listen address (e.g. localhost:6061); empty disables")
		maxBodyBytes = flag.Int64("max-body-bytes", 0,
			"request-body cap before proxying; raise for large base64 image batches (0 = 64 MiB default, negative disables)")
	)
	tenantQuotas := map[string]serve.TenantQuota{}
	flag.Func("tenant-quota",
		"router-level tenant admission quota tenant:rate=N[,burst=M] in fleet-aggregate items/s; '*' = wildcard tenant (repeatable; rejects answered at the router, before any replica is tried)",
		func(spec string) error {
			tenant, q, err := serve.ParseTenantQuotaSpec(spec)
			if err != nil {
				return err
			}
			tenantQuotas[tenant] = q
			return nil
		})
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*replicasArg, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		log.Fatal("no replicas: pass -replicas http://host:port[,http://host:port...]")
	}
	router, err := serve.NewRouter(urls, serve.RouterConfig{
		Pool: serve.PoolConfig{
			ProbeInterval:    *probeInterval,
			EjectAfter:       *ejectAfter,
			EjectionDuration: *ejectionDuration,
		},
		DrainTimeout:  *drainTimeout,
		TraceCapacity: *traceCap,
		MaxBodyBytes:  *maxBodyBytes,
		TenantQuotas:  tenantQuotas,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("routing across %d replica(s): %s", len(urls), strings.Join(urls, ", "))
	log.Printf("serving on %s (aggregated JSON metrics at /v2/metrics, Prometheus at /metrics, trace at /v2/trace)", *addr)
	pprofserve.Start(*pprofAddr, func(err error) { log.Printf("pprof: %v", err) })
	if *pprofAddr != "" {
		log.Printf("pprof on %s", *pprofAddr)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           router.Handler(),
		ReadHeaderTimeout: *readHeaderTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		router.Close()
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("shutting down: draining HTTP then in-flight routed requests (timeout %s)", *drainTimeout)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout+5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	met := router.Metrics(context.Background())
	router.Close()
	log.Printf("router: requests=%d errors=%d failovers=%d spills=%d healthy=%d/%d, "+
		"latency p50/p95/p99 = %.2f/%.2f/%.2f ms",
		met.Router.Requests, met.Router.Errors, met.Router.Failovers, met.Router.Spills,
		met.Router.HealthyReplicas, len(met.Router.Replicas),
		met.Router.LatencyMs.P50Ms, met.Router.LatencyMs.P95Ms, met.Router.LatencyMs.P99Ms)
	for _, m := range met.Models {
		log.Printf("%s (all replicas): requests=%d items=%d batches=%d errors=%d shed=%d expired=%d",
			m.Model, m.Requests, m.Items, m.Batches, m.Errors, m.Shed, m.Expired)
	}
}
