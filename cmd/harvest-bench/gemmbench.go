package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"harvest/internal/hw"
	"harvest/internal/models"
	"harvest/internal/stats"
	"harvest/internal/tensor"
)

// gemmBenchReport is the schema of BENCH_PR8.json: really-measured
// compute-backend throughput on this host, by precision, at both the
// kernel level (GFLOPS) and the model level (images/sec).
type gemmBenchReport struct {
	Host struct {
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		NumCPU     int    `json:"num_cpu"`
	} `json:"host"`
	GemmN int `json:"gemm_n"`
	Gemm  []struct {
		Precision      string  `json:"precision"`
		GFLOPS         float64 `json:"gflops"`
		SpeedupNaive   float64 `json:"speedup_vs_naive"`
		EffVsPractical float64 `json:"efficiency_vs_practical"`
	} `json:"gemm"`
	// PracticalGFLOPS is the host roofline proxy: the best measured
	// packed fp32 rate. Efficiencies are relative to it; int8 exceeding
	// 1.0 means the SWAR kernel beats the fp32 roofline, as intended.
	PracticalGFLOPS float64 `json:"practical_gflops"`
	Models          []struct {
		Model        string  `json:"model"`
		Precision    string  `json:"precision"`
		Batch        int     `json:"batch"`
		ImagesPerSec float64 `json:"images_per_sec"`
		SpeedupFP32  float64 `json:"speedup_vs_fp32"`
	} `json:"models"`
}

// modelImagesPerSec times real forward passes of one executable model
// at one precision and returns throughput in images/sec.
func modelImagesPerSec(name string, numClasses, inputSize, batch int, precision string) (float64, error) {
	m, err := models.NewExecutable(name, numClasses, precision, stats.NewRNG(1))
	if err != nil {
		return 0, err
	}
	x := tensor.New(batch, 3, inputSize, inputSize)
	x.RandInit(stats.NewRNG(7), 1)
	if _, err := m.Forward(x); err != nil { // warm pools and caches
		return 0, err
	}
	const minSec = 0.5
	iters := 0
	start := time.Now()
	for {
		if _, err := m.Forward(x); err != nil {
			return 0, err
		}
		iters++
		if time.Since(start).Seconds() >= minSec {
			break
		}
	}
	return float64(batch*iters) / time.Since(start).Seconds(), nil
}

// runGemmBench measures the compute backend end to end and writes the
// JSON report to path.
func runGemmBench(path string) error {
	const n = 1024
	var rep gemmBenchReport
	rep.Host.GOOS = runtime.GOOS
	rep.Host.GOARCH = runtime.GOARCH
	rep.Host.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Host.NumCPU = runtime.NumCPU()
	rep.GemmN = n

	fmt.Fprintf(os.Stderr, "gemmbench: measuring %dx%dx%d GEMM across precisions...\n", n, n, n)
	suite := hw.HostGemmSuite(n)
	var naive, practical float64
	for _, r := range suite {
		switch r.Precision {
		case "fp32-naive":
			naive = r.GFLOPS
		case "fp32":
			practical = r.GFLOPS
		}
	}
	rep.PracticalGFLOPS = practical
	for _, r := range suite {
		e := struct {
			Precision      string  `json:"precision"`
			GFLOPS         float64 `json:"gflops"`
			SpeedupNaive   float64 `json:"speedup_vs_naive"`
			EffVsPractical float64 `json:"efficiency_vs_practical"`
		}{Precision: r.Precision, GFLOPS: r.GFLOPS}
		if naive > 0 {
			e.SpeedupNaive = r.GFLOPS / naive
		}
		if practical > 0 {
			e.EffVsPractical = r.GFLOPS / practical
		}
		rep.Gemm = append(rep.Gemm, e)
		fmt.Fprintf(os.Stderr, "gemmbench:   %-10s %7.2f GFLOPS (%.2fx naive)\n",
			r.Precision, e.GFLOPS, e.SpeedupNaive)
	}

	// Model-level throughput on the smallest Table 3 model: real forward
	// passes through the same kernels the serving path uses.
	type mc struct {
		name            string
		classes, sz, bs int
	}
	for _, m := range []mc{{models.NameViTTiny, 1000, 32, 8}, {"ResNet_Mini", 10, 64, 8}} {
		var fp32 float64
		for _, prec := range models.ExecPrecisions() {
			ips, err := modelImagesPerSec(m.name, m.classes, m.sz, m.bs, prec)
			if err != nil {
				return err
			}
			if prec == models.PrecFP32 {
				fp32 = ips
			}
			e := struct {
				Model        string  `json:"model"`
				Precision    string  `json:"precision"`
				Batch        int     `json:"batch"`
				ImagesPerSec float64 `json:"images_per_sec"`
				SpeedupFP32  float64 `json:"speedup_vs_fp32"`
			}{Model: m.name, Precision: prec, Batch: m.bs, ImagesPerSec: ips}
			if fp32 > 0 {
				e.SpeedupFP32 = ips / fp32
			}
			rep.Models = append(rep.Models, e)
			fmt.Fprintf(os.Stderr, "gemmbench:   %-12s %-5s %8.2f img/s\n", m.name, prec, ips)
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "gemmbench: wrote %s\n", path)
	return nil
}
