// Command harvest-bench regenerates the paper's evaluation artifacts
// (Tables 1-3, Figures 4-8) from this repository's substrates.
//
// Usage:
//
//	harvest-bench [-artifact all|table1|...|fig8] [-quick] [-hostgemm]
//	              [-gemmbench out.json] [-anchors] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"harvest/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("harvest-bench: ")
	var (
		artifact  = flag.String("artifact", "all", "artifact: all, extensions, table1..table3, fig4..fig8, energy, prediction, scaleout")
		quick     = flag.Bool("quick", false, "reduce sample counts for a fast run")
		hostGEMM  = flag.Bool("hostgemm", false, "also run a real GEMM benchmark on this machine (table1)")
		gemmBench = flag.String("gemmbench", "", "measure the real compute backend (GEMM GFLOPS and model images/sec by precision), write a JSON report to this path, and exit")
		anchors   = flag.Bool("anchors", false, "print paper-vs-measured anchor comparisons and exit")
		seed      = flag.Uint64("seed", 42, "seed for synthetic data")
		format    = flag.String("format", "text", "output format: text, csv or chart")
	)
	flag.Parse()

	if *gemmBench != "" {
		if err := runGemmBench(*gemmBench); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *anchors {
		list, err := experiments.CompareAnchors()
		if err != nil {
			log.Fatal(err)
		}
		for _, an := range list {
			fmt.Println(an)
		}
		return
	}

	opts := experiments.Options{Quick: *quick, HostGEMM: *hostGEMM, Seed: *seed}
	ids := []string{*artifact}
	switch *artifact {
	case "all":
		ids = experiments.IDs()
	case "extensions":
		ids = experiments.ExtensionIDs()
	}
	for _, id := range ids {
		a, err := experiments.RunAny(id, opts)
		if err != nil {
			log.Fatalf("artifact %s: %v", id, err)
		}
		var out string
		switch *format {
		case "text":
			out = a.Render()
		case "csv":
			out = a.RenderCSV()
		case "chart":
			// The paper's figure axes are log-log for fig5/fig6.
			logScale := id == "fig5" || id == "fig6"
			out = a.Render() + a.RenderCharts(logScale, logScale)
		default:
			log.Fatalf("unknown format %q", *format)
		}
		if _, err := fmt.Fprintln(os.Stdout, out); err != nil {
			log.Fatal(err)
		}
	}
}
