// Command harvest-serve runs the HARVEST inference server (the Triton
// analogue) over HTTP, hosting the four Table 3 models on a chosen
// platform model.
//
// Usage:
//
//	harvest-serve [-addr :8000] [-platform A100|V100|Jetson]
//	              [-models ViT_Tiny,ResNet50] [-queue-delay 2ms]
//	              [-instances 1] [-timescale 1.0]
package main

import (
	"flag"
	"log"
	"net/http"
	"strings"
	"time"

	"harvest/internal/core"
	"harvest/internal/hw"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("harvest-serve: ")
	var (
		addr       = flag.String("addr", ":8000", "listen address")
		platform   = flag.String("platform", hw.KeyA100, "platform model: A100, V100 or Jetson")
		modelsArg  = flag.String("models", "", "comma-separated model names (default all four)")
		queueDelay = flag.Duration("queue-delay", 2*time.Millisecond, "dynamic batching window")
		instances  = flag.Int("instances", 1, "engine instances per model")
		timescale  = flag.Float64("timescale", 1.0, "fraction of modeled latency to really sleep (0 = none)")
	)
	flag.Parse()

	cfg := core.DeploymentConfig{
		Platform:   *platform,
		QueueDelay: *queueDelay,
		Instances:  *instances,
		TimeScale:  *timescale,
	}
	if *modelsArg != "" {
		for _, m := range strings.Split(*modelsArg, ",") {
			cfg.Models = append(cfg.Models, strings.TrimSpace(m))
		}
	}
	srv, err := core.NewDeployment(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	for _, name := range srv.Models() {
		mc, err := srv.ModelConfigFor(name)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("registered %s (max batch %d, %d instance(s))", name, mc.MaxBatch, mc.Instances)
	}
	log.Printf("platform %s, serving on %s", *platform, *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatal(err)
	}
}
