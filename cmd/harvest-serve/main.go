// Command harvest-serve runs the HARVEST inference server (the Triton
// analogue) over HTTP, hosting the four Table 3 models on a chosen
// platform model. On SIGINT/SIGTERM it shuts down gracefully: in-flight
// HTTP requests finish, queued batcher work is dispatched and served
// within the drain timeout, and the final per-model metrics are logged.
//
// Usage:
//
//	harvest-serve [-addr :8000] [-platform A100|V100|Jetson]
//	              [-models ViT_Tiny,ResNet50] [-queue-delay 2ms]
//	              [-instances 1] [-timescale 1.0] [-drain-timeout 5s]
//	              [-max-queue-depth 1024] [-realtime-slo 16.7ms]
//	              [-read-header-timeout 5s] [-trace-cap 4096]
//	              [-pprof-addr localhost:6060]
//	              [-preproc cpu|cv2] [-preproc-workers 0]
//	              [-fleet http://cp:8200] [-fleet-name edge-1]
//	              [-fleet-ttl 3s] [-advertise http://10.0.0.5:8000]
//	              [-real int8] [-real-seed 1] [-real-checkpoint model.hvt]
//	              [-stream] [-stream-model ViT_Tiny] [-stream-budget 16.7ms]
//	              [-offload-to http://router:8100] [-offload-link 5g]
//	              [-offload-chunk-bytes 65536] [-offload-queue-threshold 4]
//	              [-offload-power-budget 12] [-link-timescale 1.0]
//
// With -fleet, the replica registers itself with a harvest-fleet
// control plane and renews its lease until shutdown, where it
// deregisters with drain before the HTTP server stops.
//
// With -stream, long-lived camera ingest sessions attach at
// POST /v2/streams/{camera}: NDJSON frames up, per-frame outcomes
// down, with in-order enforcement, drop-stale admission against the
// frame budget, and a temporal dedup cache. Adding -offload-to makes
// the replica an edge tier: under queue (or power) pressure, admitted
// frames ship to the cloud tier over the modeled -offload-link.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"harvest/internal/core"
	"harvest/internal/energy"
	"harvest/internal/fleet"
	"harvest/internal/hw"
	"harvest/internal/pprofserve"
	"harvest/internal/serve"
	"harvest/internal/stream"
	"harvest/internal/transfer"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("harvest-serve: ")
	var (
		addr         = flag.String("addr", ":8000", "listen address")
		platform     = flag.String("platform", hw.KeyA100, "platform model: A100, V100 or Jetson")
		modelsArg    = flag.String("models", "", "comma-separated model names (default all four)")
		queueDelay   = flag.Duration("queue-delay", 2*time.Millisecond, "dynamic batching window")
		instances    = flag.Int("instances", 1, "engine instances per model")
		timescale    = flag.Float64("timescale", 1.0, "fraction of modeled latency to really sleep (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", serve.DefaultDrainTimeout,
			"how long shutdown serves already-queued requests before failing stragglers")
		maxQueueDepth = flag.Int("max-queue-depth", serve.DefaultMaxQueueDepth,
			"per-model admission queue bound; a full queue sheds with HTTP 429")
		realtimeSLO = flag.Duration("realtime-slo", serve.DefaultRealtimeBudget,
			"implicit deadline for realtime-class requests (negative disables)")
		readHeaderTimeout = flag.Duration("read-header-timeout", 5*time.Second,
			"per-connection header read timeout (slowloris guard)")
		traceCap = flag.Int("trace-cap", serve.DefaultTraceCapacity,
			"trace ring-buffer capacity for GET /v2/trace (negative disables)")
		pprofAddr = flag.String("pprof-addr", "",
			"optional net/http/pprof listen address (e.g. localhost:6060); empty disables")
		preproc = flag.String("preproc", "",
			"accept encoded images (images_b64) on /v2/infer, preprocessed by this engine: cpu (PyTorch-style) or cv2; empty disables")
		preprocWorkers = flag.Int("preproc-workers", 0,
			"decode/resize worker-pool size shared across models (0 = one per CPU)")
		fleetURL = flag.String("fleet", "",
			"fleet control plane base URL; the replica self-registers and renews a lease there (empty disables)")
		fleetName = flag.String("fleet-name", "",
			"lease name for -fleet registration (default host:port of -advertise)")
		fleetTTL = flag.Duration("fleet-ttl", 0,
			"requested lease TTL for -fleet registration (0 = registry default)")
		advertise = flag.String("advertise", "",
			"base URL the fleet should route to (default http://127.0.0.1<addr> when -addr has no host)")
		realBackend = flag.String("real", "",
			"attach an executable compute backend at this precision (fp32, fp16, bf16 or int8): tensor inputs run real forward passes through the packed/quantized GEMM kernels; empty keeps simulation-only serving")
		realSeed = flag.Uint64("real-seed", 1, "weight-init seed for the -real backend")
		realCkpt = flag.String("real-checkpoint", "",
			"load the -real backend's weights from this .hvt checkpoint (quantized at load into the -real precision) instead of random initialization; requires exactly one -models entry matching the checkpoint")
		streamEnable = flag.Bool("stream", false,
			"enable streaming camera ingest at POST /v2/streams/{camera} (requires -preproc: frames arrive as encoded images)")
		streamModel = flag.String("stream-model", "",
			"default model for ingest streams (default: the only served model; required with -stream when serving several)")
		streamBudget = flag.Duration("stream-budget", 0,
			"per-frame latency budget for ingest streams, counted from frame receipt (0 = the realtime SLO)")
		offloadTo = flag.String("offload-to", "",
			"cloud tier base URL (typically a harvest-router); when local queue or power pressure crosses its threshold, admitted frames ship there over the modeled -offload-link (empty disables offload)")
		offloadLink = flag.String("offload-link", "5g",
			"edge-to-cloud uplink model for -offload-to: wifi, 5g, lte or satellite")
		offloadChunk = flag.Int("offload-chunk-bytes", 64<<10,
			"uplink message size for per-message protocol overhead accounting (0 = one message per frame)")
		offloadQueueThreshold = flag.Int("offload-queue-threshold", stream.DefaultQueueThreshold,
			"local queue depth at which frames start offloading to -offload-to")
		offloadPowerBudget = flag.Float64("offload-power-budget", 0,
			"edge power budget in watts; modeled draw above it also triggers offload (0 disables the power signal)")
		linkTimescale = flag.Float64("link-timescale", 1.0,
			"fraction of modeled uplink latency to really sleep (default 1.0 = full fidelity; negative = none)")
		tenantQuantum = flag.Int("tenant-quantum", 0,
			"deficit-round-robin quantum in request-items for per-tenant fair scheduling (0 = default)")
		antiStarve = flag.Int("anti-starve-every", 0,
			"guarantee lower-priority lanes one dispatch every N polls under saturating higher-priority load (0 = default, negative disables)")
	)
	var tenantQuotas map[string]serve.TenantQuota
	flag.Func("tenant-quota",
		"per-tenant quota spec, repeatable: tenant:rate=R[,burst=B][,share=S] (\"*\" = wildcard for unlisted tenants)",
		func(spec string) error {
			tenant, q, err := serve.ParseTenantQuotaSpec(spec)
			if err != nil {
				return err
			}
			if tenantQuotas == nil {
				tenantQuotas = map[string]serve.TenantQuota{}
			}
			tenantQuotas[tenant] = q
			return nil
		})
	flag.Parse()

	cfg := core.DeploymentConfig{
		Platform:        *platform,
		QueueDelay:      *queueDelay,
		Instances:       *instances,
		TimeScale:       *timescale,
		DrainTimeout:    *drainTimeout,
		MaxQueueDepth:   *maxQueueDepth,
		RealtimeBudget:  *realtimeSLO,
		TraceCapacity:   *traceCap,
		Preproc:         *preproc,
		PreprocWorkers:  *preprocWorkers,
		RealBackend:     *realBackend,
		RealSeed:        *realSeed,
		RealCheckpoint:  *realCkpt,
		TenantQuotas:    tenantQuotas,
		TenantQuantum:   *tenantQuantum,
		AntiStarveEvery: *antiStarve,
	}
	if len(tenantQuotas) > 0 {
		for t, q := range tenantQuotas {
			log.Printf("tenant quota: %s rate=%g/s burst=%g share=%g", t, q.RatePerSec, q.Burst, q.MaxQueueShare)
		}
	}
	if *modelsArg != "" {
		for _, m := range strings.Split(*modelsArg, ",") {
			cfg.Models = append(cfg.Models, strings.TrimSpace(m))
		}
	}
	srv, err := core.NewDeployment(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range srv.Models() {
		mc, err := srv.ModelConfigFor(name)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("registered %s (max batch %d, %d instance(s))", name, mc.MaxBatch, mc.Instances)
	}
	if *preproc != "" {
		log.Printf("encoded-image preprocessing enabled (%s engine)", *preproc)
	}
	switch {
	case *realCkpt != "":
		prec := *realBackend
		if prec == "" {
			prec = "fp32"
		}
		log.Printf("real compute backend attached (%s, weights from %s)", prec, *realCkpt)
	case *realBackend != "":
		// Loud on purpose: serving random weights looks healthy but
		// misreports accuracy; say so instead of leaving it implicit.
		log.Printf("real compute backend attached (%s, RANDOM weights from seed %d — pass -real-checkpoint to serve trained weights)",
			*realBackend, *realSeed)
	}
	// Streaming ingest composes in front of the serving mux: camera
	// streams at /v2/streams/, everything else falls through to the
	// v2 API; stream counters export through the serve metrics
	// surface as the "stream" extension.
	handler := srv.Handler()
	if *streamEnable {
		if *preproc == "" {
			log.Fatal("-stream requires -preproc: camera frames arrive as encoded images")
		}
		model := *streamModel
		if model == "" {
			if names := srv.Models(); len(names) == 1 {
				model = names[0]
			} else {
				log.Fatalf("-stream-model required: serving %d models", len(srv.Models()))
			}
		}
		var pol *stream.OffloadPolicy
		if *offloadTo != "" {
			link, err := transfer.ByName(*offloadLink)
			if err != nil {
				log.Fatal(err)
			}
			pol = &stream.OffloadPolicy{
				Cloud:          serve.NewClient(*offloadTo),
				Link:           link,
				ChunkBytes:     *offloadChunk,
				QueueThreshold: *offloadQueueThreshold,
				LinkTimeScale:  *linkTimescale,
			}
			if *offloadPowerBudget > 0 {
				p, err := hw.ByName(*platform)
				if err != nil {
					log.Fatal(err)
				}
				pol.EdgePowerBudgetW = *offloadPowerBudget
				pol.Power = energy.New(p)
			}
			log.Printf("offload enabled: cloud tier %s over %s (queue threshold %d)",
				*offloadTo, link.Name, *offloadQueueThreshold)
		}
		ing, err := stream.NewIngest(stream.Config{
			Model:   model,
			Local:   srv,
			Budget:  *streamBudget,
			Offload: pol,
			Trace:   srv.Trace(),
		})
		if err != nil {
			log.Fatal(err)
		}
		srv.AddMetricsExtension("stream", ing.MetricsJSON, ing.WriteProm)
		mux := http.NewServeMux()
		mux.Handle("/v2/streams/", ing.Handler())
		mux.Handle("/", srv.Handler())
		handler = mux
		log.Printf("streaming ingest enabled at /v2/streams/{camera} (default model %s)", model)
	}
	log.Printf("platform %s, serving on %s (JSON metrics at /v2/metrics, Prometheus at /metrics, trace at /v2/trace)",
		*platform, *addr)
	pprofserve.Start(*pprofAddr, func(err error) { log.Printf("pprof: %v", err) })
	if *pprofAddr != "" {
		log.Printf("pprof on %s", *pprofAddr)
	}

	// Bound header reads and idle keep-alives so stalled connections
	// (slowloris) cannot exhaust the listener; request bodies stay
	// unbounded in time because infer requests legitimately queue.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: *readHeaderTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	// Self-registration: hold a lease with the fleet control plane for
	// as long as we serve; on shutdown the agent deregisters with drain
	// so the router stops routing here before the HTTP drain begins.
	var agentDone chan struct{}
	var agentCancel context.CancelFunc
	if *fleetURL != "" {
		adv := *advertise
		if adv == "" {
			a := *addr
			if strings.HasPrefix(a, ":") {
				a = "127.0.0.1" + a
			}
			adv = "http://" + a
		}
		name := *fleetName
		if name == "" {
			name = strings.TrimPrefix(strings.TrimPrefix(adv, "http://"), "https://")
		}
		agent := &fleet.Agent{
			FleetURL: *fleetURL,
			Name:     name,
			URL:      adv,
			Platform: *platform,
			TTL:      *fleetTTL,
			Logf:     log.Printf,
		}
		var agentCtx context.Context
		agentCtx, agentCancel = context.WithCancel(context.Background())
		agentDone = make(chan struct{})
		go func() {
			defer close(agentDone)
			if err := agent.Run(agentCtx); err != nil && !errors.Is(err, context.Canceled) {
				log.Printf("fleet agent: %v", err)
			}
		}()
		log.Printf("fleet: registering with %s as %q (advertising %s)", *fleetURL, name, adv)
	}

	select {
	case err := <-errc:
		srv.Close()
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	if agentCancel != nil {
		// Retire the lease first (deregister + drain) so new traffic
		// stops arriving while we drain what we have.
		agentCancel()
		<-agentDone
	}
	log.Printf("shutting down: draining HTTP then the batchers (timeout %s)", *drainTimeout)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout+5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	srv.Close()
	for _, m := range srv.Metrics() {
		log.Printf("%s: requests=%d items=%d batches=%d errors=%d cancelled=%d shed=%d expired=%d "+
			"queue p50/p95/p99 = %.2f/%.2f/%.2f ms, compute p50/p95/p99 = %.2f/%.2f/%.2f ms",
			m.Model, m.Requests, m.Items, m.Batches, m.Errors, m.Cancelled, m.Shed, m.Expired,
			m.QueueLatency.P50*1000, m.QueueLatency.P95*1000, m.QueueLatency.P99*1000,
			m.ComputeLatency.P50*1000, m.ComputeLatency.P95*1000, m.ComputeLatency.P99*1000)
	}
}
