// Command harvest-serve runs the HARVEST inference server (the Triton
// analogue) over HTTP, hosting the four Table 3 models on a chosen
// platform model. On SIGINT/SIGTERM it shuts down gracefully: in-flight
// HTTP requests finish, queued batcher work is dispatched and served
// within the drain timeout, and the final per-model metrics are logged.
//
// Usage:
//
//	harvest-serve [-addr :8000] [-platform A100|V100|Jetson]
//	              [-models ViT_Tiny,ResNet50] [-queue-delay 2ms]
//	              [-instances 1] [-timescale 1.0] [-drain-timeout 5s]
//	              [-max-queue-depth 1024] [-realtime-slo 16.7ms]
//	              [-read-header-timeout 5s] [-trace-cap 4096]
//	              [-pprof-addr localhost:6060]
//	              [-preproc cpu|cv2] [-preproc-workers 0]
//	              [-fleet http://cp:8200] [-fleet-name edge-1]
//	              [-fleet-ttl 3s] [-advertise http://10.0.0.5:8000]
//
// With -fleet, the replica registers itself with a harvest-fleet
// control plane and renews its lease until shutdown, where it
// deregisters with drain before the HTTP server stops.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"harvest/internal/core"
	"harvest/internal/fleet"
	"harvest/internal/hw"
	"harvest/internal/pprofserve"
	"harvest/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("harvest-serve: ")
	var (
		addr         = flag.String("addr", ":8000", "listen address")
		platform     = flag.String("platform", hw.KeyA100, "platform model: A100, V100 or Jetson")
		modelsArg    = flag.String("models", "", "comma-separated model names (default all four)")
		queueDelay   = flag.Duration("queue-delay", 2*time.Millisecond, "dynamic batching window")
		instances    = flag.Int("instances", 1, "engine instances per model")
		timescale    = flag.Float64("timescale", 1.0, "fraction of modeled latency to really sleep (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", serve.DefaultDrainTimeout,
			"how long shutdown serves already-queued requests before failing stragglers")
		maxQueueDepth = flag.Int("max-queue-depth", serve.DefaultMaxQueueDepth,
			"per-model admission queue bound; a full queue sheds with HTTP 429")
		realtimeSLO = flag.Duration("realtime-slo", serve.DefaultRealtimeBudget,
			"implicit deadline for realtime-class requests (negative disables)")
		readHeaderTimeout = flag.Duration("read-header-timeout", 5*time.Second,
			"per-connection header read timeout (slowloris guard)")
		traceCap = flag.Int("trace-cap", serve.DefaultTraceCapacity,
			"trace ring-buffer capacity for GET /v2/trace (negative disables)")
		pprofAddr = flag.String("pprof-addr", "",
			"optional net/http/pprof listen address (e.g. localhost:6060); empty disables")
		preproc = flag.String("preproc", "",
			"accept encoded images (images_b64) on /v2/infer, preprocessed by this engine: cpu (PyTorch-style) or cv2; empty disables")
		preprocWorkers = flag.Int("preproc-workers", 0,
			"decode/resize worker-pool size shared across models (0 = one per CPU)")
		fleetURL = flag.String("fleet", "",
			"fleet control plane base URL; the replica self-registers and renews a lease there (empty disables)")
		fleetName = flag.String("fleet-name", "",
			"lease name for -fleet registration (default host:port of -advertise)")
		fleetTTL = flag.Duration("fleet-ttl", 0,
			"requested lease TTL for -fleet registration (0 = registry default)")
		advertise = flag.String("advertise", "",
			"base URL the fleet should route to (default http://127.0.0.1<addr> when -addr has no host)")
		realBackend = flag.String("real", "",
			"attach an executable compute backend at this precision (fp32, fp16, bf16 or int8): tensor inputs run real forward passes through the packed/quantized GEMM kernels; empty keeps simulation-only serving")
		realSeed = flag.Uint64("real-seed", 1, "weight-init seed for the -real backend")
	)
	flag.Parse()

	cfg := core.DeploymentConfig{
		Platform:       *platform,
		QueueDelay:     *queueDelay,
		Instances:      *instances,
		TimeScale:      *timescale,
		DrainTimeout:   *drainTimeout,
		MaxQueueDepth:  *maxQueueDepth,
		RealtimeBudget: *realtimeSLO,
		TraceCapacity:  *traceCap,
		Preproc:        *preproc,
		PreprocWorkers: *preprocWorkers,
		RealBackend:    *realBackend,
		RealSeed:       *realSeed,
	}
	if *modelsArg != "" {
		for _, m := range strings.Split(*modelsArg, ",") {
			cfg.Models = append(cfg.Models, strings.TrimSpace(m))
		}
	}
	srv, err := core.NewDeployment(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range srv.Models() {
		mc, err := srv.ModelConfigFor(name)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("registered %s (max batch %d, %d instance(s))", name, mc.MaxBatch, mc.Instances)
	}
	if *preproc != "" {
		log.Printf("encoded-image preprocessing enabled (%s engine)", *preproc)
	}
	if *realBackend != "" {
		log.Printf("real compute backend attached (%s, seed %d)", *realBackend, *realSeed)
	}
	log.Printf("platform %s, serving on %s (JSON metrics at /v2/metrics, Prometheus at /metrics, trace at /v2/trace)",
		*platform, *addr)
	pprofserve.Start(*pprofAddr, func(err error) { log.Printf("pprof: %v", err) })
	if *pprofAddr != "" {
		log.Printf("pprof on %s", *pprofAddr)
	}

	// Bound header reads and idle keep-alives so stalled connections
	// (slowloris) cannot exhaust the listener; request bodies stay
	// unbounded in time because infer requests legitimately queue.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: *readHeaderTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	// Self-registration: hold a lease with the fleet control plane for
	// as long as we serve; on shutdown the agent deregisters with drain
	// so the router stops routing here before the HTTP drain begins.
	var agentDone chan struct{}
	var agentCancel context.CancelFunc
	if *fleetURL != "" {
		adv := *advertise
		if adv == "" {
			a := *addr
			if strings.HasPrefix(a, ":") {
				a = "127.0.0.1" + a
			}
			adv = "http://" + a
		}
		name := *fleetName
		if name == "" {
			name = strings.TrimPrefix(strings.TrimPrefix(adv, "http://"), "https://")
		}
		agent := &fleet.Agent{
			FleetURL: *fleetURL,
			Name:     name,
			URL:      adv,
			Platform: *platform,
			TTL:      *fleetTTL,
			Logf:     log.Printf,
		}
		var agentCtx context.Context
		agentCtx, agentCancel = context.WithCancel(context.Background())
		agentDone = make(chan struct{})
		go func() {
			defer close(agentDone)
			if err := agent.Run(agentCtx); err != nil && !errors.Is(err, context.Canceled) {
				log.Printf("fleet agent: %v", err)
			}
		}()
		log.Printf("fleet: registering with %s as %q (advertising %s)", *fleetURL, name, adv)
	}

	select {
	case err := <-errc:
		srv.Close()
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	if agentCancel != nil {
		// Retire the lease first (deregister + drain) so new traffic
		// stops arriving while we drain what we have.
		agentCancel()
		<-agentDone
	}
	log.Printf("shutting down: draining HTTP then the batchers (timeout %s)", *drainTimeout)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout+5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	srv.Close()
	for _, m := range srv.Metrics() {
		log.Printf("%s: requests=%d items=%d batches=%d errors=%d cancelled=%d shed=%d expired=%d "+
			"queue p50/p95/p99 = %.2f/%.2f/%.2f ms, compute p50/p95/p99 = %.2f/%.2f/%.2f ms",
			m.Model, m.Requests, m.Items, m.Batches, m.Errors, m.Cancelled, m.Shed, m.Expired,
			m.QueueLatency.P50*1000, m.QueueLatency.P95*1000, m.QueueLatency.P99*1000,
			m.ComputeLatency.P50*1000, m.ComputeLatency.P95*1000, m.ComputeLatency.P99*1000)
	}
}
