// Command harvest-plan is the pre-deployment planning toolkit the
// paper names as future work: given latency/throughput requirements
// and an optimization objective, it profiles each candidate
// (platform, model) pair with two batches, fits the latency law, and
// prints ranked deployment recommendations.
//
// Usage:
//
//	harvest-plan [-slo-ms 16.7] [-min-imgps 0] [-objective throughput|latency|energy]
//	             [-pipeline] [-platforms A100,V100,Jetson] [-models ViT_Tiny,...]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"harvest/internal/hw"
	"harvest/internal/predict"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("harvest-plan: ")
	var (
		sloMs     = flag.Float64("slo-ms", 16.7, "per-batch latency SLO in ms (0 = unconstrained)")
		minImgPS  = flag.Float64("min-imgps", 0, "minimum throughput in images/second")
		objective = flag.String("objective", "throughput", "throughput, latency or energy")
		pipeline  = flag.Bool("pipeline", false, "plan for co-located GPU preprocessing (end-to-end memory budget)")
		platforms = flag.String("platforms", "", "comma-separated platform keys (default all)")
		modelsArg = flag.String("models", "", "comma-separated model names (default all)")
		top       = flag.Int("top", 5, "number of recommendations to print")
	)
	flag.Parse()

	req := predict.Requirements{
		SLOSeconds:   *sloMs / 1000,
		MinImgPerSec: *minImgPS,
		Pipeline:     *pipeline,
	}
	switch *objective {
	case "throughput":
		req.Objective = predict.MaxThroughput
	case "latency":
		req.Objective = predict.MinLatency
	case "energy":
		req.Objective = predict.MaxImagesPerJoule
	default:
		log.Fatalf("unknown objective %q", *objective)
	}

	var plats []*hw.Platform
	if *platforms != "" {
		for _, name := range strings.Split(*platforms, ",") {
			p, err := hw.ByName(strings.TrimSpace(name))
			if err != nil {
				log.Fatal(err)
			}
			plats = append(plats, p)
		}
	}
	var modelNames []string
	if *modelsArg != "" {
		for _, m := range strings.Split(*modelsArg, ",") {
			modelNames = append(modelNames, strings.TrimSpace(m))
		}
	}

	opts, err := predict.Plan(req, plats, modelNames)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("objective=%s slo=%.1fms min-throughput=%.0f img/s pipeline=%v\n\n",
		req.Objective, *sloMs, *minImgPS, *pipeline)
	fmt.Printf("%-4s %-8s %-10s %-6s %-12s %-12s %-10s %-10s %s\n",
		"Rank", "Platform", "Model", "Batch", "PredLat(ms)", "Pred img/s", "img/J", "Mem(MiB)", "FitErr(max)")
	for i, o := range opts {
		if i >= *top {
			break
		}
		fmt.Printf("%-4d %-8s %-10s %-6d %-12.2f %-12.1f %-10.2f %-10d %.2e\n",
			i+1, o.Platform, o.Model, o.Batch,
			o.PredLatencySeconds*1000, o.PredImgPerSec, o.ImagesPerJoule,
			o.MemoryBytes>>20, o.FitReport.MaxRelErr)
	}
	fmt.Println("\npredictions come from two profiling batches per target (see internal/predict)")
}
