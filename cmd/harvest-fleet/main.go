// Command harvest-fleet is the serving tier's control plane: a
// dynamic router whose replica set is lease-managed (replicas register
// via POST /v2/fleet/register and renew until they deregister or their
// TTL expires) plus an SLO-driven autoscaler that consults the
// discrete-event simulation as a capacity oracle before scaling.
//
// One listener serves both planes: /v2/fleet/* is the control plane,
// everything else is the router's data plane (/v2/infer, /v2/metrics,
// /metrics, /v2/trace).
//
// Two modes:
//
//   - Advisory (default): replicas are external harvest-serve
//     processes started with -fleet pointing here. The autoscaler logs
//     what it *would* do (GET /v2/fleet/status shows decisions), but
//     only acts on membership through leases.
//
//   - Local (-local): the controller launches and retires in-process
//     replicas itself, bounded by [-min, -max] — a self-contained
//     autoscaled tier for experiments.
//
// Usage:
//
//	harvest-fleet [-addr :8200] [-model ViT_Base] [-platform Jetson]
//	              [-min 1] [-max 4] [-interval 2s] [-slo 100ms]
//	              [-slo-class online] [-lease-ttl 3s] [-local]
//	              [-timescale 1.0] [-max-queue-depth 1024]
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"harvest/internal/fleet"
	"harvest/internal/hw"
	"harvest/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("harvest-fleet: ")
	var (
		addr     = flag.String("addr", ":8200", "listen address (control plane + routed data plane)")
		model    = flag.String("model", "ViT_Base", "model whose demand drives autoscaling")
		platform = flag.String("platform", hw.KeyJetson, "replica platform the oracle prices (and -local launches)")
		minN     = flag.Int("min", 1, "fleet size floor")
		maxN     = flag.Int("max", 4, "fleet size ceiling")
		interval = flag.Duration("interval", 2*time.Second, "autoscaler tick period")
		slo      = flag.Duration("slo", 100*time.Millisecond, "per-request queue-wait SLO the controller sizes for")
		sloClass = flag.String("slo-class", "online", "class whose SLO attainment the controller watches")
		leaseTTL = flag.Duration("lease-ttl", fleet.DefaultTTL, "default replica lease TTL")
		local    = flag.Bool("local", false, "launch in-process replicas instead of waiting for external registrations")

		// Replica shape for -local launches.
		timescale = flag.Float64("timescale", 1.0, "local replicas: fraction of modeled latency to really sleep")
		queueCap  = flag.Int("max-queue-depth", 0, "local replicas: admission queue bound (0 = server default)")
	)
	flag.Parse()

	router := serve.NewDynamicRouter(serve.RouterConfig{})
	defer router.Close()
	registry := fleet.NewRegistry(router.Pool(), fleet.RegistryConfig{DefaultTTL: *leaseTTL})
	defer registry.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	selfURL := "http://" + ln.Addr().String()

	var prov fleet.Provisioner
	var lp *fleet.LocalProvisioner
	if *local {
		lp = &fleet.LocalProvisioner{
			FleetURL:      selfURL,
			Models:        []string{*model},
			TimeScale:     *timescale,
			MaxQueueDepth: *queueCap,
			TTL:           *leaseTTL,
			Logf:          log.Printf,
		}
		defer lp.Close()
		prov = lp
	}
	ctrl := fleet.NewController(router, registry, prov, fleet.ControllerConfig{
		Model: *model,
		Oracle: fleet.OracleConfig{
			Platforms:   []string{*platform},
			MaxReplicas: *maxN,
		},
		Min:      *minN,
		Max:      *maxN,
		Interval: *interval,
		SLO:      *slo,
		SLOClass: *sloClass,
		Logf:     log.Printf,
	})
	defer ctrl.Close()

	httpSrv := &http.Server{
		Handler:           fleet.Handler(registry, ctrl, router.Handler()),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := ctrl.Start(ctx); err != nil {
		log.Fatal(err)
	}
	mode := "advisory (external replicas register via -fleet)"
	if *local {
		mode = "local (in-process replicas)"
	}
	log.Printf("control plane on %s: model %s, platform %s, fleet [%d..%d], tick %s, SLO %s/%s, mode %s",
		selfURL, *model, *platform, *minN, *maxN, *interval, *slo, *sloClass, mode)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	for _, d := range ctrl.Decisions() {
		log.Printf("decision %s: %s (%d→%d, %.1f rps, attain %.2f)",
			d.At.Format(time.RFC3339), d.Reason, d.From, d.To, d.ArrivalRPS, d.Attainment)
	}
}
