// Command harvest-loadgen is the coordinated-omission-safe load
// harness: it drives a live harvest-serve or harvest-router endpoint
// with mixed scenario-class traffic (open-loop Poisson schedules
// and/or closed-loop worker pools) and writes a machine-readable
// BENCH_<name>.json with per-class throughput, service *and*
// intended-start latency percentiles, SLO attainment and outcome
// counts. Identical seed and config produce identical arrival
// schedules.
//
// Usage:
//
//	harvest-loadgen -target http://127.0.0.1:8100 -model ViT_Tiny \
//	    -class realtime:rate=120,items=1 -class offline:workers=2,items=8 \
//	    [-duration 10s] [-warmup 2s] [-seed 1] [-name run] \
//	    [-shape constant|diurnal|burst|ramp] [-peak-mult 4] \
//	    [-period 2s] [-burst-dur 400ms] [-max-inflight 4096] [-out path]
//
// With no -target, a self-hosted fleet is stood up in process:
//
//	harvest-loadgen -spawn 2 -platform A100 -timescale 0.02 ...
//
// With -fleet-max > 0 (and no -target), the self-hosted tier is
// *managed*: replicas hold leases with an in-process control plane and
// an SLO-driven autoscaler sizes the fleet off the discrete-event sim,
// optionally with a mid-run replica crash:
//
//	harvest-loadgen -fleet-max 4 -platform Jetson -timescale 1 \
//	    -shape step -step-at 10s -churn-kill-at 20s -timeline ...
//
// With -stream, the harness runs the streaming-camera scenario
// instead: N long-lived camera sessions at -fps against a streaming
// ingest endpoint (or, with no -target, a self-hosted Jetson edge
// offloading to an A100 cloud router), reporting per-camera drop rate,
// dedup hit rate, offload fraction and intended-start latency:
//
//	harvest-loadgen -stream -cameras 6 -fps 60 -stream-frames 180 \
//	    -static-cameras 2 -stream-budget 100ms -offload-queue-threshold 2
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"harvest/internal/loadgen"
	"harvest/internal/serve"
	"harvest/internal/transfer"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("harvest-loadgen: ")
	var (
		target   = flag.String("target", "", "base URL of the system under test (empty = self-host a fleet, see -spawn)")
		model    = flag.String("model", "ViT_Tiny", "model to drive")
		name     = flag.String("name", "run", "run label; default artifact is BENCH_<name>.json")
		out      = flag.String("out", "", "artifact path (default BENCH_<name>.json; \"-\" for stdout only)")
		seed     = flag.Uint64("seed", 1, "schedule seed; same seed + config = same arrival schedule")
		duration = flag.Duration("duration", 10*time.Second, "run length")
		warmup   = flag.Duration("warmup", 2*time.Second, "leading slice excluded from the measurement window")
		shape    = flag.String("shape", "constant", "open-loop rate shape: constant, diurnal, burst or ramp")
		peakMult = flag.Float64("peak-mult", 4, "shape peak as a multiple of each class's base rate")
		period   = flag.Duration("period", 0, "diurnal/burst cycle length (default duration/5)")
		burstDur = flag.Duration("burst-dur", 0, "in-burst slice of each period (default period/5)")
		maxInfl  = flag.Int("max-inflight", 4096, "per-class cap on concurrent in-flight requests")
		drain    = flag.Duration("drain", 10*time.Second, "post-horizon wait for in-flight requests")

		stepAt   = flag.Duration("step-at", 0, "step shape: when the rate jumps to peak-mult × base (default duration/3)")
		timeline = flag.Bool("timeline", false, "add per-second offered/ok/SLO-met buckets to each class report")

		// Self-hosted fleet knobs (used only when -target is empty).
		spawn     = flag.Int("spawn", 2, "self-host: replicas behind an in-process router")
		platform  = flag.String("platform", "A100", "self-host: platform model per replica")
		timescale = flag.Float64("timescale", 0.02, "self-host: fraction of modeled latency replicas really sleep")
		queueCap  = flag.Int("max-queue-depth", 0, "self-host: per-model admission queue bound (0 = server default)")
		preproc   = flag.String("preproc", "", "self-host: encoded-image engine (cpu or cv2) for image=N classes")

		// Multi-tenant fairness knobs (self-host only).
		tenantQuantum = flag.Int("tenant-quantum", 0, "self-host: DRR quantum in request-items (0 = server default)")
		antiStarve    = flag.Int("anti-starve-every", 0, "self-host: guaranteed lower-lane dispatch interval (0 = server default, negative disables)")

		// Managed (autoscaled) self-hosted fleet: -fleet-max > 0 replaces
		// the fixed -spawn tier with a lease registry + SLO-driven
		// autoscaler over the same in-process replicas.
		fleetMin      = flag.Int("fleet-min", 1, "managed fleet: size floor")
		fleetMax      = flag.Int("fleet-max", 0, "managed fleet: size ceiling; > 0 enables the autoscaled tier")
		fleetInterval = flag.Duration("fleet-interval", 2*time.Second, "managed fleet: autoscaler tick")
		fleetSLO      = flag.Duration("fleet-slo", 100*time.Millisecond, "managed fleet: queue-wait SLO the controller sizes for")
		fleetSLOClass = flag.String("fleet-slo-class", "online", "managed fleet: class whose attainment the controller watches")
		leaseTTL      = flag.Duration("fleet-lease-ttl", 0, "managed fleet: replica lease TTL (0 = registry default)")
		churnKillAt   = flag.Duration("churn-kill-at", 0, "managed fleet: kill one replica (crash, no deregistration) this long into the run; 0 disables")

		// Streaming-camera scenario (-stream replaces the request classes).
		streamMode    = flag.Bool("stream", false, "run the streaming-camera scenario instead of request classes")
		cameras       = flag.Int("cameras", 4, "stream: concurrent camera sessions")
		staticCams    = flag.Int("static-cameras", 1, "stream: cameras watching a near-static scene (the dedup target)")
		fps           = flag.Float64("fps", 60, "stream: per-camera frame rate")
		streamFrames  = flag.Int("stream-frames", 120, "stream: frames per camera")
		frameSize     = flag.Int("frame-size", 96, "stream: square frame edge in pixels (PPM-encoded)")
		streamBudget  = flag.Duration("stream-budget", 100*time.Millisecond, "stream: per-frame latency budget (0 = server default)")
		offloadThresh = flag.Int("offload-queue-threshold", 2, "stream self-host: edge queue depth that triggers offload")
		offloadLink   = flag.String("offload-link", "5g", "stream self-host: uplink model (wifi, 5g, lte, satellite)")
	)
	var classes []loadgen.ClassConfig
	flag.Func("class",
		"traffic class spec, repeatable: class[:rate=R|workers=N][,items=I][,deadline=D][,slo=D][,image=PX][,tenant=ID]",
		func(spec string) error {
			cc, err := loadgen.ParseClassSpec(spec)
			if err != nil {
				return err
			}
			classes = append(classes, cc)
			return nil
		})
	var tenantQuotas map[string]serve.TenantQuota
	flag.Func("tenant-quota",
		"self-host: per-tenant quota spec, repeatable: tenant:rate=R[,burst=B][,share=S] (\"*\" = wildcard)",
		func(spec string) error {
			tenant, q, err := serve.ParseTenantQuotaSpec(spec)
			if err != nil {
				return err
			}
			if tenantQuotas == nil {
				tenantQuotas = map[string]serve.TenantQuota{}
			}
			tenantQuotas[tenant] = q
			return nil
		})
	flag.Parse()

	if len(classes) == 0 {
		// A representative default mix: paper §2.2's online scenario
		// open-loop, plus a light offline batch background.
		classes = []loadgen.ClassConfig{
			{Class: "online", Rate: 50, Items: 1},
			{Class: "offline", Workers: 1, Items: 8},
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *streamMode {
		runStreamScenario(ctx, streamFlags{
			target:         *target,
			model:          *model,
			name:           *name,
			out:            *out,
			seed:           *seed,
			cameras:        *cameras,
			staticCams:     *staticCams,
			fps:            *fps,
			frames:         *streamFrames,
			frameSize:      *frameSize,
			budget:         *streamBudget,
			queueThreshold: *offloadThresh,
			link:           *offloadLink,
		})
		return
	}

	tgt := *target
	var managed *loadgen.ManagedFleet
	switch {
	case tgt == "" && *fleetMax > 0:
		log.Printf("self-hosting a managed fleet: %s replicas in [%d..%d], tick %s, SLO %s/%s (timescale %g)",
			*platform, *fleetMin, *fleetMax, *fleetInterval, *fleetSLO, *fleetSLOClass, *timescale)
		var err error
		managed, err = loadgen.StartManagedFleet(loadgen.ManagedFleetConfig{
			Model:         *model,
			Platform:      *platform,
			Min:           *fleetMin,
			Max:           *fleetMax,
			Interval:      *fleetInterval,
			SLO:           *fleetSLO,
			SLOClass:      *fleetSLOClass,
			LeaseTTL:      *leaseTTL,
			TimeScale:     *timescale,
			MaxQueueDepth: *queueCap,
			Logf:          log.Printf,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer managed.Close()
		tgt = managed.URL
		log.Printf("managed fleet ready at %s", tgt)
		if *churnKillAt > 0 {
			at := *churnKillAt
			time.AfterFunc(at, func() {
				name, err := managed.KillOne()
				if err != nil {
					log.Printf("churn: kill at %s: %v", at, err)
					return
				}
				log.Printf("churn: killed replica %s at %s (lease left to expire)", name, at)
			})
		}
	case tgt == "":
		models := []string{*model}
		log.Printf("self-hosting %d %s replica(s) behind an in-process router (timescale %g)",
			*spawn, *platform, *timescale)
		fleet, err := loadgen.StartFleet(loadgen.FleetConfig{
			Replicas:        *spawn,
			Platform:        *platform,
			Models:          models,
			TimeScale:       *timescale,
			MaxQueueDepth:   *queueCap,
			Preproc:         *preproc,
			TenantQuotas:    tenantQuotas,
			TenantQuantum:   *tenantQuantum,
			AntiStarveEvery: *antiStarve,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer fleet.Close()
		tgt = fleet.URL
		log.Printf("fleet ready at %s (replicas: %s)", tgt, strings.Join(fleet.ReplicaURLs, ", "))
	}

	cfg := loadgen.Config{
		Target:       tgt,
		Model:        *model,
		Name:         *name,
		Seed:         *seed,
		Duration:     *duration,
		Warmup:       *warmup,
		Shape:        loadgen.Shape(*shape),
		PeakMult:     *peakMult,
		Period:       *period,
		BurstDur:     *burstDur,
		StepAt:       *stepAt,
		Timeline:     *timeline,
		MaxInflight:  *maxInfl,
		DrainTimeout: *drain,
		Classes:      classes,
	}
	log.Printf("driving %s model %s for %s (warmup %s, shape %s, seed %d)",
		tgt, *model, *duration, *warmup, *shape, *seed)
	report, err := loadgen.Run(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if managed != nil {
		report.Fleet = managed.FleetReport()
		for _, d := range report.Fleet.Decisions {
			if d.To != d.From {
				log.Printf("autoscaler: %s (%d→%d, %.1f rps observed, predicted %.1f img/s at p99 %.0f ms)",
					d.Reason, d.From, d.To, d.ArrivalRPS, d.PredictedImgPerSec, d.PredictedP99Ms)
			}
		}
	}
	fmt.Print(report.Summary())
	path := *out
	if path == "" {
		path = report.DefaultPath()
	}
	if path != "-" {
		if err := report.WriteFile(path); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", path)
	} else if err := report.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// streamFlags carries the -stream scenario's resolved flag values.
type streamFlags struct {
	target, model, name, out string
	seed                     uint64
	cameras, staticCams      int
	fps                      float64
	frames, frameSize        int
	budget                   time.Duration
	queueThreshold           int
	link                     string
}

// runStreamScenario drives the streaming-camera workload: against
// -target if given, else against a self-hosted edge→cloud continuum
// (Jetson edge at full-fidelity sleeps, offloading to an A100 router).
func runStreamScenario(ctx context.Context, f streamFlags) {
	tgt := f.target
	if tgt == "" {
		link, err := transfer.ByName(f.link)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("self-hosting an edge→cloud continuum: Jetson edge (+streaming ingest) offloading to an A100 router over %s (queue threshold %d)",
			link.Name, f.queueThreshold)
		ec, err := loadgen.StartEdgeCloud(loadgen.EdgeCloudConfig{
			Model:          f.model,
			QueueThreshold: f.queueThreshold,
			Budget:         f.budget,
			Link:           &link,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer ec.Close()
		tgt = ec.URL
		log.Printf("edge ready at %s (cloud router at %s)", ec.URL, ec.CloudURL)
	}
	log.Printf("streaming %d camera(s) at %g FPS, %d frames each (budget %s, seed %d)",
		f.cameras, f.fps, f.frames, f.budget, f.seed)
	report, err := loadgen.RunStream(ctx, loadgen.StreamConfig{
		Name:            f.name,
		URL:             tgt,
		Cameras:         f.cameras,
		StaticCameras:   f.staticCams,
		FPS:             f.fps,
		FramesPerCamera: f.frames,
		Model:           f.model,
		Budget:          f.budget,
		FrameSize:       f.frameSize,
		Seed:            f.seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.Summary())
	path := f.out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", f.name)
	}
	if path != "-" {
		if err := report.WriteFile(path); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", path)
	} else if err := report.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
