// Command harvest-loadgen is the coordinated-omission-safe load
// harness: it drives a live harvest-serve or harvest-router endpoint
// with mixed scenario-class traffic (open-loop Poisson schedules
// and/or closed-loop worker pools) and writes a machine-readable
// BENCH_<name>.json with per-class throughput, service *and*
// intended-start latency percentiles, SLO attainment and outcome
// counts. Identical seed and config produce identical arrival
// schedules.
//
// Usage:
//
//	harvest-loadgen -target http://127.0.0.1:8100 -model ViT_Tiny \
//	    -class realtime:rate=120,items=1 -class offline:workers=2,items=8 \
//	    [-duration 10s] [-warmup 2s] [-seed 1] [-name run] \
//	    [-shape constant|diurnal|burst|ramp] [-peak-mult 4] \
//	    [-period 2s] [-burst-dur 400ms] [-max-inflight 4096] [-out path]
//
// With no -target, a self-hosted fleet is stood up in process:
//
//	harvest-loadgen -spawn 2 -platform A100 -timescale 0.02 ...
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"harvest/internal/loadgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("harvest-loadgen: ")
	var (
		target   = flag.String("target", "", "base URL of the system under test (empty = self-host a fleet, see -spawn)")
		model    = flag.String("model", "ViT_Tiny", "model to drive")
		name     = flag.String("name", "run", "run label; default artifact is BENCH_<name>.json")
		out      = flag.String("out", "", "artifact path (default BENCH_<name>.json; \"-\" for stdout only)")
		seed     = flag.Uint64("seed", 1, "schedule seed; same seed + config = same arrival schedule")
		duration = flag.Duration("duration", 10*time.Second, "run length")
		warmup   = flag.Duration("warmup", 2*time.Second, "leading slice excluded from the measurement window")
		shape    = flag.String("shape", "constant", "open-loop rate shape: constant, diurnal, burst or ramp")
		peakMult = flag.Float64("peak-mult", 4, "shape peak as a multiple of each class's base rate")
		period   = flag.Duration("period", 0, "diurnal/burst cycle length (default duration/5)")
		burstDur = flag.Duration("burst-dur", 0, "in-burst slice of each period (default period/5)")
		maxInfl  = flag.Int("max-inflight", 4096, "per-class cap on concurrent in-flight requests")
		drain    = flag.Duration("drain", 10*time.Second, "post-horizon wait for in-flight requests")

		// Self-hosted fleet knobs (used only when -target is empty).
		spawn     = flag.Int("spawn", 2, "self-host: replicas behind an in-process router")
		platform  = flag.String("platform", "A100", "self-host: platform model per replica")
		timescale = flag.Float64("timescale", 0.02, "self-host: fraction of modeled latency replicas really sleep")
		queueCap  = flag.Int("max-queue-depth", 0, "self-host: per-model admission queue bound (0 = server default)")
		preproc   = flag.String("preproc", "", "self-host: encoded-image engine (cpu or cv2) for image=N classes")
	)
	var classes []loadgen.ClassConfig
	flag.Func("class",
		"traffic class spec, repeatable: class[:rate=R|workers=N][,items=I][,deadline=D][,slo=D][,image=PX]",
		func(spec string) error {
			cc, err := loadgen.ParseClassSpec(spec)
			if err != nil {
				return err
			}
			classes = append(classes, cc)
			return nil
		})
	flag.Parse()

	if len(classes) == 0 {
		// A representative default mix: paper §2.2's online scenario
		// open-loop, plus a light offline batch background.
		classes = []loadgen.ClassConfig{
			{Class: "online", Rate: 50, Items: 1},
			{Class: "offline", Workers: 1, Items: 8},
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	tgt := *target
	if tgt == "" {
		models := []string{*model}
		log.Printf("self-hosting %d %s replica(s) behind an in-process router (timescale %g)",
			*spawn, *platform, *timescale)
		fleet, err := loadgen.StartFleet(loadgen.FleetConfig{
			Replicas:      *spawn,
			Platform:      *platform,
			Models:        models,
			TimeScale:     *timescale,
			MaxQueueDepth: *queueCap,
			Preproc:       *preproc,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer fleet.Close()
		tgt = fleet.URL
		log.Printf("fleet ready at %s (replicas: %s)", tgt, strings.Join(fleet.ReplicaURLs, ", "))
	}

	cfg := loadgen.Config{
		Target:       tgt,
		Model:        *model,
		Name:         *name,
		Seed:         *seed,
		Duration:     *duration,
		Warmup:       *warmup,
		Shape:        loadgen.Shape(*shape),
		PeakMult:     *peakMult,
		Period:       *period,
		BurstDur:     *burstDur,
		MaxInflight:  *maxInfl,
		DrainTimeout: *drain,
		Classes:      classes,
	}
	log.Printf("driving %s model %s for %s (warmup %s, shape %s, seed %d)",
		tgt, *model, *duration, *warmup, *shape, *seed)
	report, err := loadgen.Run(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.Summary())
	path := *out
	if path == "" {
		path = report.DefaultPath()
	}
	if path != "-" {
		if err := report.WriteFile(path); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", path)
	} else if err := report.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
