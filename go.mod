module harvest

go 1.22
