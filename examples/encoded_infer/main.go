// Encoded-image inference: clients at the edge of the compute
// continuum ship camera frames, not tensors. This example registers a
// model with a real (micro-ViT) backend and a CPU preprocessing engine,
// then POSTs JPEG and raw (PPM) frames as images_b64 to /v2/infer. The
// server decodes, resizes and normalizes inside its admission-bounded
// preprocess stage, so the per-request timings_ms breakdown — and the
// /v2/metrics preprocess summary — show where Fig. 7's preprocessing
// cost lands in the serving pipeline.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"harvest/internal/engine"
	"harvest/internal/hw"
	"harvest/internal/imaging"
	"harvest/internal/models"
	"harvest/internal/preprocess"
	"harvest/internal/serve"
	"harvest/internal/stats"
)

func main() {
	log.SetFlags(0)

	platform := hw.A100()
	eng, err := engine.New(platform, models.NameViTTiny)
	if err != nil {
		log.Fatal(err)
	}
	// A real forward pass so classifications depend on pixel content.
	real, err := models.NewViTModel(models.MicroViTConfig(4), stats.NewRNG(11))
	if err != nil {
		log.Fatal(err)
	}
	eng.Real = real

	pre := &preprocess.CPUEngine{
		Platform:    platform,
		Out:         32, // must match the backend's input resolution
		Materialize: true,
		Workers:     4,
	}
	defer pre.Close()

	srv := serve.NewServer()
	defer srv.Close()
	if err := srv.Register(serve.ModelConfig{
		Name:       "leafnet",
		Engine:     eng,
		MaxBatch:   16,
		QueueDelay: time.Millisecond,
		InputSize:  32,
		Preproc:    pre,
	}); err != nil {
		log.Fatal(err)
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := serve.NewClient(ts.URL)
	ctx := context.Background()
	if err := client.WaitReady(ctx); err != nil {
		log.Fatal(err)
	}

	frames := []struct {
		name   string
		kind   imaging.SyntheticKind
		format imaging.Format
	}{
		{"leaf-closeup", imaging.KindLeaf, imaging.FormatJPEG},
		{"row-crop-uas", imaging.KindRows, imaging.FormatJPEG},
		{"soil-residue", imaging.KindSoil, imaging.FormatPPM},
		{"fruit-detect", imaging.KindFruit, imaging.FormatPPM},
	}
	rng := stats.NewRNG(7)
	fmt.Println("frame          format  class  preprocess(ms)  compute(ms)  total(ms)")
	for i, f := range frames {
		im := imaging.Synthesize(640, 480, f.kind, rng)
		data, err := imaging.EncodeBytes(im, f.format)
		if err != nil {
			log.Fatal(err)
		}
		resp, err := client.Infer(ctx, "leafnet", serve.InferRequestJSON{
			ID:          fmt.Sprintf("frame-%d", i),
			Images:      [][]byte{data},
			ImageFormat: f.format.String(),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %-7s %5d  %14.3f  %11.3f  %9.3f\n",
			f.name, f.format, resp.Classification[0],
			resp.Timings.PreprocessMs, resp.Timings.ComputeMs, resp.Timings.TotalMs)
	}

	met, err := client.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range met.Models {
		fmt.Printf("\n%s: %d requests, preprocess p50/max = %.3f/%.3f ms (n=%d)\n",
			m.Model, m.Requests, m.PreprocessMs.P50Ms, m.PreprocessMs.MaxMs,
			m.PreprocessMs.Count)
	}
}
