// Quickstart: load a platform, a model and a dataset; preprocess a real
// batch on the CPU; run the inference engine; print latency, throughput
// and MFU — the minimal end-to-end tour of the HARVEST-Go public API.
package main

import (
	"fmt"
	"log"

	"harvest/internal/datasets"
	"harvest/internal/engine"
	"harvest/internal/hw"
	"harvest/internal/models"
	"harvest/internal/preprocess"
	"harvest/internal/stats"
)

func main() {
	log.SetFlags(0)

	// 1. Pick a platform model (the paper's A100 cloud node).
	platform := hw.A100()
	fmt.Printf("platform: %s — %.1f practical TFLOPS (%.0f theoretical, %.1f%% efficiency)\n",
		platform.FullName, platform.PracticalTFLOPS, platform.TheoreticalTFLOPS,
		platform.FLOPSEfficiency()*100)

	// 2. Pick a dataset (Table 2) and materialize a few real images.
	spec, err := datasets.ByName(datasets.SlugPlantVillage)
	if err != nil {
		log.Fatal(err)
	}
	ds := datasets.MustNew(spec, 42)
	fmt.Printf("dataset: %s — %d classes, %d samples, %s\n",
		spec.Name, spec.Classes, ds.Len(), spec.UseCase)

	const batch = 8
	items := make([]preprocess.Item, batch)
	for i := range items {
		items[i], err = preprocess.ItemFromDataset(ds, i)
		if err != nil {
			log.Fatal(err)
		}
	}

	// 3. Really preprocess the batch on the CPU (decode + resize +
	//    normalize), producing model-ready tensors.
	pre := &preprocess.CPUEngine{Platform: platform, Out: 224, Materialize: true}
	preRes, err := pre.ProcessBatch(items)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("preprocess: %d images -> %d tensors of %d values in %.2f ms (CPU, real)\n",
		batch, len(preRes.Tensors), len(preRes.Tensors[0]), preRes.Seconds*1000)

	// 4. Run the calibrated inference engine for each Table 3 model.
	fmt.Println("\nmodel        batch  latency(ms)  img/s      MFU%   GFLOPs/img")
	for _, name := range models.Names() {
		eng, err := engine.New(platform, name)
		if err != nil {
			log.Fatal(err)
		}
		st, err := eng.Infer(batch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %5d  %10.2f  %9.1f  %5.1f  %10.2f\n",
			name, st.Batch, st.Seconds*1000, st.ImgPerSec, st.MFU*100,
			eng.Entry.Spec.GFLOPsPerImage())
	}

	// 5. Run a REAL forward pass with a micro ViT to demonstrate the
	//    actual compute backend (same code path the big models use).
	rng := stats.NewRNG(7)
	micro, err := models.NewViTModel(models.MicroViTConfig(spec.Classes), rng)
	if err != nil {
		log.Fatal(err)
	}
	microEng, err := engine.New(platform, models.NameViTTiny)
	if err != nil {
		log.Fatal(err)
	}
	microEng.Real = micro
	// The micro model takes 32x32 inputs; preprocess again at 32.
	pre32 := &preprocess.CPUEngine{Platform: platform, Out: 32, Materialize: true}
	res32, err := pre32.ProcessBatch(items[:4])
	if err != nil {
		log.Fatal(err)
	}
	outputs, _, err := microEng.InferTensors(res32.Tensors, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nreal forward pass (ViT_Micro) predictions:")
	for i, logits := range outputs {
		best := 0
		for c := range logits {
			if logits[c] > logits[best] {
				best = c
			}
		}
		fmt.Printf("  image %d -> class %d (%d-way)\n", i, best, len(logits))
	}
}
