// Ground-vehicle real-time scenario (paper Fig. 3b): a GoPro-style 4K
// camera feed on a Jetson Orin Nano must be perspective-rectified,
// preprocessed and classified within the frame deadline. The example
// simulates 30 and 60 FPS streams for each model and reports which
// configurations hold the deadline — the paper's real-time tuning
// question.
package main

import (
	"errors"
	"fmt"
	"log"

	"harvest/internal/datasets"
	"harvest/internal/engine"
	"harvest/internal/hw"
	"harvest/internal/models"
	"harvest/internal/sim"
	"harvest/internal/workload"
)

func main() {
	log.SetFlags(0)

	jetson := hw.Jetson()
	crsa, err := datasets.ByName(datasets.SlugCRSA)
	if err != nil {
		log.Fatal(err)
	}
	frameW, frameH := crsa.ModalSize()
	fmt.Printf("platform: %s (25W, unified %d GB)\n", jetson.FullName, jetson.GPUMemBytes>>30)
	fmt.Printf("camera:   %dx%d frames (CRSA ground-vehicle feed)\n\n", frameW, frameH)

	for _, fps := range []float64{30, 60} {
		deadline := 1 / fps
		fmt.Printf("--- %v FPS stream (deadline %.1f ms/frame) ---\n", fps, deadline*1000)
		for _, name := range models.Names() {
			eng, err := engine.New(jetson, name)
			if err != nil {
				log.Fatal(err)
			}
			eng.Pipeline = true
			// Real-time mode: batch 1 (one frame at a time).
			st, err := eng.Infer(1)
			if errors.Is(err, engine.ErrOOM) {
				fmt.Printf("%-10s does not fit alongside preprocessing\n", name)
				continue
			} else if err != nil {
				log.Fatal(err)
			}
			// Per-frame GPU preprocessing: decode + perspective +
			// resize to the model input.
			out := eng.Entry.Spec.InputSize
			preSec := hw.GPUPreprocImageSeconds(jetson, frameW*frameH, out*out)

			// Simulate the stream: frames arrive at FPS; preprocess
			// and inference are pipelined on their resources.
			s := sim.New()
			pre := sim.NewResource(s, "preprocess", 1)
			gpu := sim.NewResource(s, "engine", 1)
			slo := workload.NewSLOTracker(deadline)
			frames := workload.FrameTrace(fps, 240)
			for _, f := range frames {
				arrival := f.Time
				s.Schedule(arrival, func() {
					pre.Submit(preSec, func(_, _ float64) {
						gpu.Submit(st.Seconds, func(_, end float64) {
							slo.Observe(end - arrival)
						})
					})
				})
			}
			s.Run()

			status := "MEETS deadline"
			if slo.MissRate() > 0.01 {
				status = "misses deadline"
			}
			fmt.Printf("%-10s pre=%5.1fms infer=%5.1fms  miss=%5.1f%% worst=%6.1fms  %s\n",
				name, preSec*1000, st.Seconds*1000, slo.MissRate()*100,
				slo.WorstSeconds()*1000, status)
		}
		fmt.Println()
	}
	fmt.Println("tuning takeaway (paper §2.2.3/§5): on the edge, pick the smallest model that")
	fmt.Println("meets accuracy needs; preprocessing of 4K frames dominates the frame budget,")
	fmt.Println("so GPU-accelerated preprocessing is mandatory for real-time operation.")

	// Power-mode sweep: can a lower power mode still hold 30 FPS with
	// ViT_Tiny? Battery life vs. deadline margin.
	fmt.Println("\n--- power-mode sweep (ViT_Tiny, 30 FPS) ---")
	for _, watts := range hw.JetsonPowerWatts {
		mode, err := hw.JetsonPowerMode(watts)
		if err != nil {
			log.Fatal(err)
		}
		eng, err := engine.New(mode, models.NameViTTiny)
		if err != nil {
			log.Fatal(err)
		}
		eng.Pipeline = true
		st, err := eng.Infer(1)
		if err != nil {
			log.Fatal(err)
		}
		preSec := hw.GPUPreprocImageSeconds(mode, frameW*frameH, 32*32)
		frameSec := preSec + st.Seconds // no pipelining margin assumed
		status := "holds 30 FPS"
		if frameSec > 1.0/30 {
			status = "too slow for 30 FPS"
		}
		fmt.Printf("%4.0fW  pre=%5.1fms infer=%5.1fms total=%5.1fms  ~%.1f img/J  %s\n",
			watts, preSec*1000, st.Seconds*1000, frameSec*1000,
			(1/frameSec)/mode.PowerW, status)
	}
}
