// Engine build workflow (paper §4.0.2): models "are provided in the
// platform-neutral ONNX format and internally converted to the
// inference-oriented TensorRT format". This example saves a trained
// model as a platform-neutral checkpoint, builds platform engines at
// each precision (fp32/fp16/bf16), and measures how the reduced
// precision perturbs weights and predictions — the accuracy side of the
// paper's accuracy-latency trade-off.
package main

import (
	"bytes"
	"fmt"
	"log"

	"harvest/internal/modelio"
	"harvest/internal/models"
	"harvest/internal/stats"
	"harvest/internal/tensor"
)

func main() {
	log.SetFlags(0)

	// 1. "Train" a model (random weights stand in for a fine-tuned
	//    farm-localized model) and export it.
	const classes = 23 // Corn Growth Stage
	m, err := models.NewViTModel(models.MicroViTConfig(classes), stats.NewRNG(11))
	if err != nil {
		log.Fatal(err)
	}
	var checkpoint bytes.Buffer
	if err := modelio.SaveViT(&checkpoint, m); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported checkpoint: %d bytes (%d tensors)\n",
		checkpoint.Len(), len(m.NamedTensors()))

	// 2. Reference predictions from the fp32 model on a probe batch.
	probe := tensor.New(8, 3, 32, 32)
	probe.RandInit(stats.NewRNG(12), 1)
	ref, err := m.Forward(probe)
	if err != nil {
		log.Fatal(err)
	}
	refPreds := predictions(ref)

	// 3. Build engines at each precision and compare.
	fmt.Println("\nprecision  weight-err(max)  logit-err(max)  pred-agreement")
	for _, prec := range []string{"fp32", "fp16", "bf16"} {
		cp, err := modelio.Load(bytes.NewReader(checkpoint.Bytes()))
		if err != nil {
			log.Fatal(err)
		}
		rep, err := modelio.BuildEngine(cp, prec)
		if err != nil {
			log.Fatal(err)
		}
		eng, err := modelio.LoadViT(cp)
		if err != nil {
			log.Fatal(err)
		}
		out, err := eng.Forward(probe)
		if err != nil {
			log.Fatal(err)
		}
		agree := 0
		preds := predictions(out)
		for i := range preds {
			if preds[i] == refPreds[i] {
				agree++
			}
		}
		fmt.Printf("%-9s  %15.2e  %14.2e  %8d/%d\n",
			prec, rep.MaxAbsError, tensor.MaxAbsDiff(ref, out), agree, len(preds))
	}
	fmt.Println("\nfp16/bf16 engines perturb weights by <1e-3 and almost never change")
	fmt.Println("predictions — why the paper runs its engines at half precision for")
	fmt.Println("~2x the tensor-core throughput (Table 1).")
}

func predictions(logits *tensor.Tensor) []int {
	n := logits.Shape[1]
	out := make([]int, logits.Shape[0])
	for i := range out {
		out[i] = tensor.ArgMax(logits.Data[i*n : (i+1)*n])
	}
	return out
}
