// Model selection under a latency SLO — the guidance use case of the
// paper's abstract ("how elaborately selected hyperparameters can
// improve throughput under latency constraints"). For each platform and
// each model the example finds the largest batch whose latency stays
// under the SLO, then recommends the highest-throughput configuration.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"

	"harvest/internal/engine"
	"harvest/internal/hw"
	"harvest/internal/models"
)

func main() {
	log.SetFlags(0)
	sloMs := flag.Float64("slo-ms", hw.QPS60LatencyMs, "per-batch latency SLO in milliseconds")
	flag.Parse()

	fmt.Printf("latency SLO: %.1f ms per batch (60 QPS default, the paper's Fig. 6 red line)\n\n", *sloMs)
	for _, p := range hw.FigureOrder() {
		fmt.Printf("--- %s ---\n", p.FullName)
		type choice struct {
			model string
			batch int
			thr   float64
			mfu   float64
		}
		var best *choice
		for _, name := range models.Names() {
			eng, err := engine.New(p, name)
			if err != nil {
				log.Fatal(err)
			}
			var c *choice
			for _, b := range hw.BatchSweep(p.Name) {
				st, err := eng.Infer(b)
				if errors.Is(err, engine.ErrOOM) {
					break
				} else if err != nil {
					log.Fatal(err)
				}
				if st.Seconds*1000 > *sloMs {
					break
				}
				c = &choice{model: name, batch: b, thr: st.ImgPerSec, mfu: st.MFU}
			}
			if c == nil {
				fmt.Printf("  %-10s no batch size meets the SLO\n", name)
				continue
			}
			fmt.Printf("  %-10s best batch %4d -> %9.1f img/s (MFU %4.1f%%)\n",
				c.model, c.batch, c.thr, c.mfu*100)
			if best == nil || c.thr > best.thr {
				best = c
			}
		}
		if best != nil {
			fmt.Printf("  => recommend %s @ BS%d: %.1f img/s under the SLO\n\n",
				best.model, best.batch, best.thr)
		} else {
			fmt.Printf("  => no configuration meets the SLO on this platform\n\n")
		}
	}
	fmt.Println("note: accuracy is task-specific — the paper's guidance is to pick the")
	fmt.Println("smallest model meeting accuracy needs, then use this sweep to set batch size.")
}
