// Online inference scenario (paper §2.2.1): a HARVEST inference server
// with dynamic batching serves Poisson request traffic over HTTP. The
// example starts the server in-process on a loopback port, drives it
// with open-loop clients at increasing rates, and reports how dynamic
// batching trades latency for throughput.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http/httptest"
	"sync"
	"time"

	"harvest/internal/engine"
	"harvest/internal/hw"
	"harvest/internal/metrics"
	"harvest/internal/models"
	"harvest/internal/serve"
	"harvest/internal/stats"
	"harvest/internal/workload"
)

func main() {
	log.SetFlags(0)

	platform := hw.A100()
	srv := serve.NewServer()
	defer srv.Close()
	eng, err := engine.New(platform, models.NameViTSmall)
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Register(serve.ModelConfig{
		Name:       models.NameViTSmall,
		Engine:     eng,
		MaxBatch:   64,
		QueueDelay: 2 * time.Millisecond,
		Instances:  1,
		// Sleep 1:1 with the modeled engine latency so clients see
		// platform-like pacing.
		TimeScale: 1.0,
	}); err != nil {
		log.Fatal(err)
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := serve.NewClient(ts.URL)
	ctx := context.Background()
	if err := client.WaitReady(ctx); err != nil {
		log.Fatal(err)
	}
	names, err := client.Models(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server ready at %s, models: %v\n\n", ts.URL, names)
	fmt.Println("rate(req/s)  sent  p50(ms)  p95(ms)  mean-batch-fill  img/s")

	rng := stats.NewRNG(99)
	for _, rate := range []float64{50, 200, 600} {
		trace := workload.PoissonTrace(rng, rate, 2.0, 4)
		rec := &metrics.LatencyRecorder{}
		var wg sync.WaitGroup
		start := time.Now()
		for i, a := range trace {
			// Open loop: fire at the trace's arrival time.
			delay := time.Duration(a.Time*float64(time.Second)) - time.Since(start)
			if delay > 0 {
				time.Sleep(delay)
			}
			wg.Add(1)
			go func(i, items int) {
				defer wg.Done()
				t0 := time.Now()
				_, err := client.Infer(ctx, models.NameViTSmall,
					serve.InferRequestJSON{ID: fmt.Sprintf("r%d", i), Items: items})
				if err != nil {
					log.Printf("request %d failed: %v", i, err)
					return
				}
				rec.Observe(time.Since(t0).Seconds())
			}(i, a.Items)
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		st, err := srv.StatsFor(models.NameViTSmall)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%11.0f  %4d  %7.2f  %7.2f  %15.2f  %6.1f\n",
			rate, len(trace), rec.PercentileMs(50), rec.PercentileMs(95),
			st.MeanBatchFill, float64(workload.TotalItems(trace))/elapsed)
	}

	// Server-side latency decomposition from GET /v2/metrics: the split
	// of request latency into batcher queueing vs. batch execution that
	// the paper's online scenario (Fig. 6) is characterized by.
	mj, err := client.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nserver-side decomposition (GET /v2/metrics, all rates pooled):")
	for _, m := range mj.Models {
		fmt.Printf("%s: requests=%d items=%d batches=%d errors=%d\n",
			m.Model, m.Requests, m.Items, m.Batches, m.Errors)
		fmt.Printf("  queue ms:   p50=%7.2f  p95=%7.2f  p99=%7.2f\n",
			m.QueueMs.P50Ms, m.QueueMs.P95Ms, m.QueueMs.P99Ms)
		fmt.Printf("  compute ms: p50=%7.2f  p95=%7.2f  p99=%7.2f\n",
			m.ComputeMs.P50Ms, m.ComputeMs.P95Ms, m.ComputeMs.P99Ms)
	}
	// Every infer response also carries its own per-stage breakdown
	// (timings_ms), so a single request can be diagnosed without
	// scraping aggregates; the same stages appear as spans in
	// GET /v2/trace and as histograms in the Prometheus GET /metrics.
	resp, err := client.Infer(ctx, models.NameViTSmall,
		serve.InferRequestJSON{ID: "traced-1", Items: 4})
	if err != nil {
		log.Fatal(err)
	}
	if tm := resp.Timings; tm != nil {
		fmt.Printf("\none request's own timings_ms (id %s): admit=%.3f queue=%.3f "+
			"batch-assembly=%.3f compute=%.3f\n",
			resp.ID, tm.AdmitMs, tm.QueueMs, tm.BatchAssemblyMs, tm.ComputeMs)
	}

	fmt.Println("\nas offered load rises, the dynamic batcher fuses more requests per batch:")
	fmt.Println("throughput climbs toward the engine's saturated rate while per-request")
	fmt.Println("latency grows by at most the batching window plus the larger batch time —")
	fmt.Println("the online-inference trade-off of paper §2.2.1.")

	overloadDemo(srv, ts.URL)
}

// overloadDemo pushes an edge-class deployment far past its capacity to
// show admission control at work: a bounded queue sheds excess traffic
// with HTTP 429 + Retry-After, unmeetable deadlines are evicted with
// 504 instead of wasting batch slots, and the realtime lane is served
// ahead of offline work.
func overloadDemo(srv *serve.Server, baseURL string) {
	edgeEng, err := engine.New(hw.Jetson(), models.NameViTBase)
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Register(serve.ModelConfig{
		Name:          "Edge_ViT_Base",
		Engine:        edgeEng,
		MaxBatch:      8,
		QueueDelay:    2 * time.Millisecond,
		TimeScale:     1.0,
		MaxQueueDepth: 16, // far below the burst size: shedding is expected
	}); err != nil {
		log.Fatal(err)
	}

	// Retries off: we want to see the 429s, not mask them.
	burst := serve.NewClient(baseURL)
	burst.MaxRetries = -1
	ctx := context.Background()

	const n = 200
	const deadline = 60 * time.Millisecond
	var served, shed, expired int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	fmt.Printf("\n=== overload: %d-request burst at a Jetson-class model (queue bound 16) ===\n", n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := serve.InferRequestJSON{ID: fmt.Sprintf("b%d", i), Items: 1, Class: "offline"}
			if i%2 == 0 {
				req.Class = "realtime"
				req.DeadlineMs = float64(deadline) / float64(time.Millisecond)
			}
			_, err := burst.Infer(ctx, "Edge_ViT_Base", req)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				served++
			case errors.Is(err, serve.ErrOverloaded):
				shed++
			case errors.Is(err, serve.ErrDeadlineExpired):
				expired++
			default:
				log.Printf("burst request %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	fmt.Printf("client outcomes: served=%d shed(429)=%d deadline-expired(504)=%d\n",
		served, shed, expired)

	m, err := srv.MetricsFor("Edge_ViT_Base")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server counters: requests=%d shed=%d expired=%d\n", m.Requests, m.Shed, m.Expired)
	for _, class := range []string{"realtime", "online", "offline"} {
		if q, ok := m.ClassQueueLatency[class]; ok {
			fmt.Printf("  queue ms [%-8s]: p50=%7.2f  p99=%7.2f  (n=%d)\n",
				class, q.P50*1000, q.P99*1000, q.N)
		}
	}
	fmt.Println("\nthe bounded queue fails excess load fast instead of letting latency grow")
	fmt.Println("without bound; every admitted realtime request was dispatched within its")
	fmt.Printf("deadline (served realtime queue p99 stays under %v), because requests whose\n", deadline)
	fmt.Println("slack cannot cover the modeled batch latency are evicted before dispatch.")
}
