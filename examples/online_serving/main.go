// Online inference scenario (paper §2.2.1): a HARVEST inference server
// with dynamic batching serves Poisson request traffic over HTTP. The
// example starts the server in-process on a loopback port, drives it
// with open-loop clients at increasing rates, and reports how dynamic
// batching trades latency for throughput.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"sync"
	"time"

	"harvest/internal/engine"
	"harvest/internal/hw"
	"harvest/internal/metrics"
	"harvest/internal/models"
	"harvest/internal/serve"
	"harvest/internal/stats"
	"harvest/internal/workload"
)

func main() {
	log.SetFlags(0)

	platform := hw.A100()
	srv := serve.NewServer()
	defer srv.Close()
	eng, err := engine.New(platform, models.NameViTSmall)
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Register(serve.ModelConfig{
		Name:       models.NameViTSmall,
		Engine:     eng,
		MaxBatch:   64,
		QueueDelay: 2 * time.Millisecond,
		Instances:  1,
		// Sleep 1:1 with the modeled engine latency so clients see
		// platform-like pacing.
		TimeScale: 1.0,
	}); err != nil {
		log.Fatal(err)
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := serve.NewClient(ts.URL)
	ctx := context.Background()
	if err := client.WaitReady(ctx); err != nil {
		log.Fatal(err)
	}
	names, err := client.Models(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server ready at %s, models: %v\n\n", ts.URL, names)
	fmt.Println("rate(req/s)  sent  p50(ms)  p95(ms)  mean-batch-fill  img/s")

	rng := stats.NewRNG(99)
	for _, rate := range []float64{50, 200, 600} {
		trace := workload.PoissonTrace(rng, rate, 2.0, 4)
		rec := &metrics.LatencyRecorder{}
		var wg sync.WaitGroup
		start := time.Now()
		for i, a := range trace {
			// Open loop: fire at the trace's arrival time.
			delay := time.Duration(a.Time*float64(time.Second)) - time.Since(start)
			if delay > 0 {
				time.Sleep(delay)
			}
			wg.Add(1)
			go func(i, items int) {
				defer wg.Done()
				t0 := time.Now()
				_, err := client.Infer(ctx, models.NameViTSmall,
					serve.InferRequestJSON{ID: fmt.Sprintf("r%d", i), Items: items})
				if err != nil {
					log.Printf("request %d failed: %v", i, err)
					return
				}
				rec.Observe(time.Since(t0).Seconds())
			}(i, a.Items)
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		st, err := srv.StatsFor(models.NameViTSmall)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%11.0f  %4d  %7.2f  %7.2f  %15.2f  %6.1f\n",
			rate, len(trace), rec.PercentileMs(50), rec.PercentileMs(95),
			st.MeanBatchFill, float64(workload.TotalItems(trace))/elapsed)
	}

	// Server-side latency decomposition from GET /v2/metrics: the split
	// of request latency into batcher queueing vs. batch execution that
	// the paper's online scenario (Fig. 6) is characterized by.
	mj, err := client.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nserver-side decomposition (GET /v2/metrics, all rates pooled):")
	for _, m := range mj.Models {
		fmt.Printf("%s: requests=%d items=%d batches=%d errors=%d\n",
			m.Model, m.Requests, m.Items, m.Batches, m.Errors)
		fmt.Printf("  queue ms:   p50=%7.2f  p95=%7.2f  p99=%7.2f\n",
			m.QueueMs.P50Ms, m.QueueMs.P95Ms, m.QueueMs.P99Ms)
		fmt.Printf("  compute ms: p50=%7.2f  p95=%7.2f  p99=%7.2f\n",
			m.ComputeMs.P50Ms, m.ComputeMs.P95Ms, m.ComputeMs.P99Ms)
	}
	fmt.Println("\nas offered load rises, the dynamic batcher fuses more requests per batch:")
	fmt.Println("throughput climbs toward the engine's saturated rate while per-request")
	fmt.Println("latency grows by at most the batching window plus the larger batch time —")
	fmt.Println("the online-inference trade-off of paper §2.2.1.")
}
