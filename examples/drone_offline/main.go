// Drone offline workflow (paper Fig. 3a): UAS captures are stitched
// into an orthomosaic (the OpenDroneMap step), tiled, pushed through
// the HARVEST inference pipeline in offline mode, and rendered as a
// field heatmap — with real pixels end to end and a real micro-model
// classifying every tile.
package main

import (
	"fmt"
	"log"
	"os"

	"harvest/internal/datasets"
	"harvest/internal/engine"
	"harvest/internal/heatmap"
	"harvest/internal/hw"
	"harvest/internal/imaging"
	"harvest/internal/models"
	"harvest/internal/pipeline"
	"harvest/internal/stats"
	"harvest/internal/stitch"
)

func main() {
	log.SetFlags(0)

	// 1. Simulate a 3x4 drone flight grid over a corn field with 24 px
	//    overlap between captures.
	const rows, cols, overlap = 3, 4, 24
	rng := stats.NewRNG(2026)
	tiles := make([]*imaging.Image, rows*cols)
	for i := range tiles {
		tiles[i] = imaging.Synthesize(160, 160, imaging.KindRows, rng.Split())
	}
	grid, err := stitch.NewGrid(rows, cols, overlap, tiles)
	if err != nil {
		log.Fatal(err)
	}
	mosaic := grid.Mosaic()
	fmt.Printf("stitched %dx%d captures into a %dx%d orthomosaic\n",
		rows, cols, mosaic.W, mosaic.H)

	// 2. Tile the orthomosaic for inference.
	const tileSize = 64
	infTiles, err := stitch.TileImage(mosaic, tileSize, tileSize)
	if err != nil {
		log.Fatal(err)
	}
	gcols, grows := stitch.GridDims(mosaic.W, mosaic.H, tileSize, tileSize)
	fmt.Printf("tiled into %d tiles (%dx%d grid)\n", len(infTiles), gcols, grows)

	// 3. Classify every tile with a REAL micro-ViT forward pass
	//    (residue-cover-style estimation).
	const classes = 8
	vit, err := models.NewViTModel(models.MicroViTConfig(classes), stats.NewRNG(7))
	if err != nil {
		log.Fatal(err)
	}
	eng, err := engine.New(hw.A100(), models.NameViTTiny)
	if err != nil {
		log.Fatal(err)
	}
	eng.Real = vit

	inputs := make([][]float32, len(infTiles))
	for i, t := range infTiles {
		small := imaging.Resize(t.Image, 32, 32)
		inputs[i] = imaging.Normalize(small, imaging.ImageNetMean, imaging.ImageNetStd)
	}
	logits, st, err := eng.InferTensors(inputs, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classified %d tiles; modeled engine latency %.2f ms (%.1f img/s on %s)\n",
		len(logits), st.Seconds*1000, st.ImgPerSec, eng.Platform.Name)

	// 4. Render the per-tile score for class 0 as a field heatmap.
	hm, err := heatmap.FromScores(gcols, grows, logits, 0)
	if err != nil {
		log.Fatal(err)
	}
	out, err := os.Create("field_heatmap.ppm")
	if err != nil {
		log.Fatal(err)
	}
	defer out.Close()
	if err := hm.WritePPM(out, 16); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote field_heatmap.ppm (%dx%d cells, mean score %.3f)\n",
		hm.Cols, hm.Rows, hm.Mean())

	// 5. Project offline-campaign cost on each platform: the Corn
	//    Growth Stage dataset through the full pipeline, overlapped.
	spec, err := datasets.ByName(datasets.SlugCornGrowth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noffline campaign projection (Corn Growth Stage, ViT_Base):")
	for _, p := range hw.FigureOrder() {
		res, err := pipeline.Run(pipeline.Config{
			Platform: p, Model: models.NameViTBase, Dataset: spec,
			Batches: 16, Overlap: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		campaign := float64(spec.Samples) / res.Throughput
		fmt.Printf("  %-7s batch=%-3d %8.1f img/s -> %6.1f s for all %d images (bottleneck: %s)\n",
			p.Name, res.Batch, res.Throughput, campaign, spec.Samples, res.Bottleneck)
	}
}
