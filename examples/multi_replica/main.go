// Multi-replica serving: the scale-out tier of the paper's §3 backend
// ("prepared for future scale-out through different parallelism
// strategies"), live. Three single-model replicas run behind a
// health-checked replica-pool router; a burst of traffic is driven
// through the router's /v2 surface while one replica is killed
// mid-run — every accepted request still completes, the dead replica
// is ejected by its circuit breaker, and the router's aggregated
// metrics show the failovers. Then scaleout.Validate closes the loop:
// the same operating point is run through the discrete-event
// simulation and a live router-fronted tier, and the throughput/P99
// deltas are printed.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"harvest/internal/engine"
	"harvest/internal/hw"
	"harvest/internal/models"
	"harvest/internal/scaleout"
	"harvest/internal/serve"
)

const model = models.NameViTTiny

func newReplica(platform *hw.Platform) (*serve.Server, string, func(), error) {
	eng, err := engine.New(platform, model)
	if err != nil {
		return nil, "", nil, err
	}
	srv := serve.NewServer()
	if err := srv.Register(serve.ModelConfig{
		Name:       model,
		Engine:     eng,
		MaxBatch:   8,
		QueueDelay: 500 * time.Microsecond,
		TimeScale:  2, // really sleep 2x modeled latency: requests overlap the kill
	}); err != nil {
		srv.Close()
		return nil, "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = hs.Serve(ln) }()
	stop := func() { _ = hs.Close(); srv.Close() }
	return srv, "http://" + ln.Addr().String(), stop, nil
}

func main() {
	log.SetFlags(0)
	platform := hw.A100()

	fmt.Println("=== replica-pool router: failover under load ===")
	const replicas = 3
	var stops []func()
	var urls []string
	for i := 0; i < replicas; i++ {
		_, url, stop, err := newReplica(platform)
		if err != nil {
			log.Fatal(err)
		}
		stops = append(stops, stop)
		urls = append(urls, url)
		fmt.Printf("replica r%d at %s\n", i, url)
	}
	router, err := serve.NewRouter(urls, serve.RouterConfig{
		Pool: serve.PoolConfig{
			ProbeInterval:    20 * time.Millisecond,
			EjectAfter:       2,
			EjectionDuration: 500 * time.Millisecond,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	const total = 300
	var wg sync.WaitGroup
	var ok, failed atomic.Int64
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if _, err := router.Infer(ctx, model, serve.InferRequestJSON{Items: 2}); err != nil {
				failed.Add(1)
				return
			}
			ok.Add(1)
		}()
		time.Sleep(300 * time.Microsecond)
		if i == total/3 {
			fmt.Printf("killing replica r0 with ~%d requests in flight...\n", total/3)
			stops[0]()
		}
	}
	wg.Wait()

	met := router.Metrics(context.Background())
	fmt.Printf("served %d/%d requests, %d failed\n", ok.Load(), total, failed.Load())
	fmt.Printf("router: failovers=%d spills=%d healthy=%d/%d, p50/p99 = %.2f/%.2f ms\n",
		met.Router.Failovers, met.Router.Spills,
		met.Router.HealthyReplicas, len(met.Router.Replicas),
		met.Router.LatencyMs.P50Ms, met.Router.LatencyMs.P99Ms)
	for _, rs := range met.Router.Replicas {
		fmt.Printf("  %s healthy=%v ejections=%d\n", rs.Name, rs.Healthy, rs.Ejections)
	}
	router.Close()
	for _, stop := range stops[1:] {
		stop()
	}

	fmt.Println()
	fmt.Println("=== scaleout.Validate: analytic model vs live tier ===")
	res, err := scaleout.Validate(scaleout.ValidateConfig{
		Config: scaleout.Config{
			Platform: platform, Model: models.NameViTBase,
			Replicas: 2, Batch: 64,
			OfferedBatchesPerSec: 20, // ~20% utilization, below saturation
			HorizonSeconds:       6,
			Seed:                 11,
		},
		TimeScale: 0.3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("operating point: %s %s, %d replicas, batch %d, %.0f batches/s offered\n",
		platform.Name, models.NameViTBase, res.Sim.Replicas, res.Sim.Batch, 20.0)
	fmt.Printf("throughput: sim %.1f img/s vs real %.1f img/s (rel err %.2f%%)\n",
		res.Sim.Throughput, res.Real.Throughput, res.ThroughputRelErr*100)
	fmt.Printf("p99 latency: sim %.2f ms vs real %.2f ms (rel err %.1f%%; real includes loopback HTTP overhead)\n",
		res.Sim.P99LatencySeconds*1000, res.Real.P99LatencySeconds*1000, res.P99RelErr*100)
	if res.ThroughputRelErr <= 0.15 {
		fmt.Println("within 15%: the simulation is a usable capacity predictor for the real tier")
	}
}
